#!/usr/bin/env python3
"""The problem and the fix: reordering across load-balanced switch designs.

Recreates the paper's motivation (§1-2) on one screen:

* the **baseline** load-balanced switch reorders heavily — exactly the
  behavior that confuses TCP;
* **TCP hashing** fixes ordering but melts down when hashing concentrates
  too much rate on one intermediate port (watch its backlog high-water);
* **Sprinklers** fixes ordering *and* stays balanced, at delay comparable
  to the other stable designs.

Usage::

    python examples/reordering_demo.py
"""

import numpy as np

from repro.sim.experiment import run_single
from repro.switching.hashing import TcpHashingSwitch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def run_reordering_comparison() -> None:
    n, load, slots = 16, 0.85, 20_000
    matrix = uniform_matrix(n, load)
    print(f"N={n}, uniform load {load}, {slots} slots\n")
    print(f"{'switch':16s} {'mean delay':>11s} {'late pkts':>10s} "
          f"{'max displacement':>17s}")
    for name in ("load-balanced", "tcp-hashing", "sprinklers", "ufs"):
        result = run_single(name, matrix, slots, seed=3, load_label=load)
        print(
            f"{name:16s} {result.mean_delay:11.1f} {result.late_packets:10d} "
            f"{result.max_displacement:17d}"
        )


def run_hashing_meltdown() -> None:
    """Oversubscribe one intermediate port under per-VOQ hashing."""
    n, slots = 16, 20_000
    switch = TcpHashingSwitch(n, salt=0, per_flow=False)
    # Find VOQs of input 0 that hash onto the same intermediate port and
    # pour all of input 0's traffic into them.
    from repro.switching.packet import Packet

    by_port = {}
    for j in range(n):
        probe = Packet(input_port=0, output_port=j, arrival_slot=0)
        by_port.setdefault(switch.assigned_port(probe), []).append(j)
    port, victims = max(by_port.items(), key=lambda kv: len(kv[1]))
    matrix = np.zeros((n, n))
    for j in victims:
        matrix[0][j] = 0.8 / len(victims)

    traffic = TrafficGenerator(matrix, np.random.default_rng(1))
    for slot, packets in traffic.slots(slots):
        switch.step(slot, packets)
    offered = 0.8
    capacity = 1.0 / n
    print(
        f"\nTCP-hashing meltdown: {len(victims)} VOQs of input 0 all hash "
        f"to intermediate port {port}"
    )
    print(f"offered to that port: {offered:.3f} packets/slot; "
          f"its service rate: {capacity:.3f}")
    print(f"input backlog after {slots} slots: "
          f"{switch.max_input_backlog()} packets (grows without bound)")


def main() -> None:
    run_reordering_comparison()
    run_hashing_meltdown()


if __name__ == "__main__":
    main()
