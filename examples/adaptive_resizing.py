#!/usr/bin/env python3
"""Online rate adaptation with clearance (paper §3.3.2 and §5).

The paper sizes stripes from VOQ rates, measured online, with hysteresis
against thrashing and a clearance phase so resizes cannot reorder packets.
This example drives a switch through a workload whose rates *shift
mid-run* — a traffic matrix rotation — and shows:

* the estimator discovering the new rates and resizing stripes;
* zero reordering across every resize (clearance at work);
* stripe sizes before and after matching the oracle for each phase.

Usage::

    python examples/adaptive_resizing.py
"""

import numpy as np

from repro.core.interval_assignment import StripeIntervalAssignment
from repro.core.sprinklers_switch import SprinklersSwitch
from repro.core.striping import stripe_size_for_rate
from repro.sim.metrics import SimulationMetrics
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def drive(switch, matrix, slots, start_slot, metrics, seed, seq_state):
    # seq_state keeps per-VOQ sequence numbers continuous across phases so
    # the reordering detector measures the switch, not the phase boundary.
    traffic = TrafficGenerator(
        matrix, np.random.default_rng(seed), seq_state=seq_state
    )
    for slot, packets in traffic.slots(slots):
        # Re-stamp to the global clock (each generator starts at 0).
        for p in packets:
            p.arrival_slot += start_slot
        for packet in switch.step(start_slot + slot, packets):
            metrics.observe_departure(packet, measure=True)
    return start_slot + slots


def main() -> None:
    n = 16
    phase_a = uniform_matrix(n, 0.6)  # hot: every VOQ wants wide stripes
    phase_b = uniform_matrix(n, 0.15)  # cool-down: narrow stripes suffice

    # Start from a blank slate: all stripes size 1, learn everything online.
    assignment = StripeIntervalAssignment(
        np.zeros((n, n)), rng=np.random.default_rng(0)
    )
    switch = SprinklersSwitch(
        assignment, adaptive=True, estimator_beta=0.02, sizer_patience=6
    )
    metrics = SimulationMetrics(keep_samples=False)
    seq_state = {}

    print(f"N={n}; phase A: uniform load 0.6; phase B: uniform load 0.15")
    clock = drive(switch, phase_a, 20_000, 0, metrics, seed=1, seq_state=seq_state)
    resizes_a = switch.resizes
    oracle_a = stripe_size_for_rate(float(phase_a[1][1]), n)
    print(f"\nafter phase A ({clock} slots): {resizes_a} resizes")
    print(f"  VOQ (1,1): size {switch.stripe_size(1, 1)} "
          f"(oracle for its rate: {oracle_a})")

    clock = drive(
        switch, phase_b, 40_000, clock, metrics, seed=2, seq_state=seq_state
    )
    print(f"\nafter phase B ({clock} slots): "
          f"{switch.resizes - resizes_a} further resizes")
    oracle_b = stripe_size_for_rate(float(phase_b[1][1]), n)
    print(f"  VOQ (1,1): size {switch.stripe_size(1, 1)} "
          f"(oracle for its new rate: {oracle_b})")

    for packet in switch.drain(80 * n):
        metrics.observe_departure(packet, measure=True)
    print(f"\npackets delivered: {metrics.delays.count}")
    print(f"reordered across all resizes: {metrics.reordering.late_packets}")
    assert metrics.reordering.late_packets == 0
    print("OK: clearance kept every resize reordering-free.")


if __name__ == "__main__":
    main()
