#!/usr/bin/env python3
"""Where does the delay go?  Per-stage decomposition across switches.

The paper's core delay argument (§3.1) is about *aggregation*: UFS forces
every VOQ to accumulate N packets, so at light load its delay is pure
waiting; Sprinklers sizes stripes to the VOQ's rate, shrinking exactly
that term.  This example measures the decomposition directly:

* ``assembly``    — waiting for the stripe/frame/grant to form,
* ``input_queue`` — formed, waiting to cross the first fabric,
* ``transit``     — first fabric to departure.

Usage::

    python examples/delay_breakdown.py
    python examples/delay_breakdown.py --n 32 --slots 50000
"""

import argparse

from repro.sim.experiment import run_single
from repro.traffic.matrices import uniform_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=16)
    parser.add_argument("--slots", type=int, default=20_000)
    parser.add_argument("--loads", type=float, nargs="+", default=[0.2, 0.5, 0.9])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    switches = ("sprinklers", "ufs", "pf", "foff", "cms")
    print(
        f"Per-stage mean delay (slots), N={args.n}, uniform traffic, "
        f"{args.slots} slots per point\n"
    )
    header = (
        f"{'load':>5s} {'switch':>11s} {'assembly':>9s} "
        f"{'input_q':>8s} {'transit':>8s} {'total':>8s}"
    )
    for load in args.loads:
        print(header)
        matrix = uniform_matrix(args.n, load)
        for name in switches:
            result = run_single(
                name, matrix, args.slots, seed=args.seed,
                load_label=load, keep_samples=False,
            )
            assembly = result.extras.get("mean_assembly_delay", float("nan"))
            input_q = result.extras.get("mean_input_queue_delay", float("nan"))
            transit = result.extras.get("mean_transit_delay", float("nan"))
            print(
                f"{load:5.2f} {name:>11s} {assembly:9.1f} "
                f"{input_q:8.1f} {transit:8.1f} {result.mean_delay:8.1f}"
            )
        print()
    print(
        "Note how UFS's 'assembly' column dwarfs everything at light load\n"
        "while Sprinklers' scales with its rate-proportional stripe sizes —\n"
        "the paper's §3.1 argument, measured."
    )


if __name__ == "__main__":
    main()
