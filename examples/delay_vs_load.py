#!/usr/bin/env python3
"""Regenerate the paper's Figures 6 and 7 (delay vs load, five switches).

Full fidelity takes a few minutes; pass ``--quick`` for a reduced grid.

Usage::

    python examples/delay_vs_load.py --quick
    python examples/delay_vs_load.py --slots 200000      # paper scale
    python examples/delay_vs_load.py --pattern diagonal  # Figure 7 only
"""

import argparse

from repro.figures import fig6, fig7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=32, help="switch size")
    parser.add_argument("--slots", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--pattern",
        choices=("uniform", "diagonal", "both"),
        default="both",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="N=16, 10k slots, 4 load points",
    )
    args = parser.parse_args()

    if args.quick:
        n, slots = 16, 10_000
        loads = (0.1, 0.4, 0.7, 0.9)
    else:
        n, slots = args.n, args.slots
        loads = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)

    if args.pattern in ("uniform", "both"):
        print(fig6.render(n=n, loads=loads, num_slots=slots, seed=args.seed))
        print()
    if args.pattern in ("diagonal", "both"):
        print(fig7.render(n=n, loads=loads, num_slots=slots, seed=args.seed))


if __name__ == "__main__":
    main()
