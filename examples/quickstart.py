#!/usr/bin/env python3
"""Quickstart: build a Sprinklers switch, push traffic, check the claims.

Runs a 32-port Sprinklers switch at 80% uniform load for 20k slots and
verifies the paper's two headline properties on live traffic:

* zero packet reordering (per-VOQ FIFO order at the outputs);
* delay comparable to the other reordering-free designs without UFS's
  full-frame accumulation penalty.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import SprinklersSwitch, TrafficGenerator, simulate
from repro.traffic.matrices import uniform_matrix


def main() -> None:
    n = 32
    load = 0.8
    matrix = uniform_matrix(n, load)

    # 1. The static configuration: primary ports from a weakly uniform
    #    random Latin square, dyadic intervals sized by Equation (1).
    switch = SprinklersSwitch.from_rates(matrix, seed=1)
    assignment = switch.assignment
    print(f"Sprinklers switch: N={n}, load={load}")
    print(f"stripe size of VOQ (0, 0): {switch.stripe_size(0, 0)}")
    print(f"interval of VOQ (0, 0):    {assignment.interval(0, 0)}")
    print(f"max queue load:            {assignment.max_queue_load():.5f} "
          f"(service rate is 1/N = {1 / n:.5f})")

    # 2. Drive Bernoulli traffic through it.
    traffic = TrafficGenerator(matrix, np.random.default_rng(2))
    result = simulate(switch, traffic, num_slots=20_000, load_label=load)

    # 3. The paper's claims, measured.
    print(f"\nmeasured packets: {result.measured_packets}")
    print(f"mean delay:       {result.mean_delay:.1f} slots")
    print(f"p99 delay:        {result.p99_delay:.1f} slots")
    print(f"reordered (late): {result.late_packets}")
    assert result.is_ordered, "Sprinklers must never reorder!"
    print("\nOK: zero reordering, as Theorem-grade design intended.")


if __name__ == "__main__":
    main()
