#!/usr/bin/env python3
"""Anatomy of a Sprinklers switch: placements, stripes, and one stripe's trip.

Visualizes (in text) the machinery of §3 on an 8x8 switch:

* the primary-port Latin square and the per-VOQ dyadic intervals
  (the paper's Fig. 2);
* each input's load per intermediate port (why the randomization works);
* one instrumented stripe's slot-by-slot journey: consecutive departure
  slots to consecutive ports, consecutive arrival slots at the output
  (the paper's Fig. 3 schedule-grid discipline).

Usage::

    python examples/stripe_anatomy.py
"""

import numpy as np

from repro.core.sprinklers_switch import SprinklersSwitch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import lognormal_matrix


def show_assignment(switch: SprinklersSwitch) -> None:
    assignment = switch.assignment
    n = assignment.n
    print("Primary-port Latin square A[i][j] (row = input, col = output):")
    for i in range(n):
        print("  " + " ".join(f"{assignment.primary_port(i, j):2d}" for j in range(n)))

    print("\nStripe intervals of input 0 (paper Fig. 2, in (l, l+2^k] form):")
    for j in range(n):
        interval = assignment.interval(0, j)
        rate = assignment.rates[0][j]
        bar = ["."] * n
        for port in interval.ports():
            bar[port] = "#"
        print(
            f"  VOQ (0,{j}) rate={rate:.4f} size={interval.size:2d} "
            f"{interval.as_paper_notation():>9s}  |{''.join(bar)}|"
        )

    print("\nPer-intermediate-port load from input 0 "
          "(service rate per queue is 1/N):")
    loads = assignment.input_port_loads(0)
    for m, value in enumerate(loads):
        blocks = int(round(value * switch.n * 40))
        print(f"  port {m}: {value:.4f} {'=' * blocks}")


def show_stripe_journey(switch: SprinklersSwitch, matrix) -> None:
    traffic = TrafficGenerator(matrix, np.random.default_rng(7))
    for slot, packets in traffic.slots(4000):
        switch.step(slot, packets)
    switch.drain(50 * switch.n)

    # Pick the largest fully recorded stripe.
    candidates = [
        sid
        for sid, tx in switch.stripe_tx.items()
        if sid in switch.stripe_rx and len(tx) == len(switch.stripe_rx[sid])
    ]
    stripe_id = max(candidates, key=lambda sid: len(switch.stripe_tx[sid]))
    tx = switch.stripe_tx[stripe_id]
    rx = switch.stripe_rx[stripe_id]
    print(f"\nJourney of stripe {stripe_id} (size {len(tx)}):")
    print(f"  {'packet':>6s} {'tx slot':>8s} {'-> mid port':>11s} {'rx slot':>8s}")
    for pos, ((tx_slot, port), rx_slot) in enumerate(zip(tx, rx)):
        print(f"  {pos:6d} {tx_slot:8d} {port:11d} {rx_slot:8d}")
    print(
        "  -> consecutive slots, consecutive ports, both directions: "
        "the no-reordering guarantee, visible."
    )


def main() -> None:
    n = 8
    # Skewed rates so the stripe sizes genuinely vary.
    matrix = lognormal_matrix(n, 0.8, sigma=1.2, rng=np.random.default_rng(5))
    switch = SprinklersSwitch.from_rates(matrix, seed=2, record_stripe_events=True)
    show_assignment(switch)
    show_stripe_journey(switch, matrix)


if __name__ == "__main__":
    main()
