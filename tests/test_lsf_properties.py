"""Property-based stress of the LSF structures under random operation mixes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval
from repro.core.lsf import LsfInputScheduler, LsfIntermediateScheduler
from repro.core.striping import Stripe
from repro.switching.packet import Packet


def make_stripe(stripe_id, start, size, output=0):
    packets = [
        Packet(input_port=0, output_port=output, arrival_slot=0, seq=k)
        for k in range(size)
    ]
    return Stripe(stripe_id, 0, output, DyadicInterval(start, size), packets)


@st.composite
def stripe_specs(draw, n=8):
    size = draw(st.sampled_from([1, 2, 4, 8]))
    start = draw(st.integers(0, n // size - 1)) * size
    return (start, size)


class TestInputSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(stripe_specs(), min_size=1, max_size=20), st.integers(0, 100))
    def test_no_loss_no_duplication(self, specs, seed):
        # Insert random stripes, serve rows round-robin until empty:
        # every packet comes out exactly once.
        n = 8
        lsf = LsfInputScheduler(n)
        inserted = 0
        for sid, (start, size) in enumerate(specs):
            lsf.insert(make_stripe(sid, start, size))
            inserted += size
        seen = set()
        # Worst case every stripe shares one row, visited once per n sweeps.
        for sweep in range(n * (inserted + 1)):
            row = sweep % n
            packet = lsf.serve(row)
            if packet is not None:
                key = (packet.stripe_id, packet.stripe_pos)
                assert key not in seen
                seen.add(key)
        assert len(seen) == inserted
        assert lsf.occupancy == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(stripe_specs(), min_size=2, max_size=16))
    def test_fifo_order_within_size_class(self, specs):
        # For stripes of equal interval, service order on any row must be
        # insertion order.
        n = 8
        lsf = LsfInputScheduler(n)
        for sid, (start, size) in enumerate(specs):
            lsf.insert(make_stripe(sid, start, size))
        last_per_class = {}
        for sweep in range(200):
            row = sweep % n
            packet = lsf.serve(row)
            if packet is None:
                continue
            cls = (row, packet.stripe_size)
            if cls in last_per_class:
                assert packet.stripe_id > last_per_class[cls]
            last_per_class[cls] = packet.stripe_id

    @settings(max_examples=40, deadline=None)
    @given(st.lists(stripe_specs(), min_size=1, max_size=16))
    def test_largest_first_on_every_row(self, specs):
        # Immediately after inserting everything, the first packet served
        # on each row belongs to the largest class queued on that row.
        n = 8
        lsf = LsfInputScheduler(n)
        largest_on_row = {}
        for sid, (start, size) in enumerate(specs):
            lsf.insert(make_stripe(sid, start, size))
            for port in range(start, start + size):
                largest_on_row[port] = max(largest_on_row.get(port, 0), size)
        for row in range(n):
            packet = lsf.serve(row)
            if row in largest_on_row:
                assert packet is not None
                assert packet.stripe_size == largest_on_row[row]
            else:
                assert packet is None


class TestIntermediateSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),  # output
                st.sampled_from([1, 2, 4, 8]),  # stripe size
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_no_loss_per_output(self, deliveries):
        n = 8
        lsf = LsfIntermediateScheduler(n)
        per_output = {}
        for k, (output, size) in enumerate(deliveries):
            packet = Packet(input_port=0, output_port=output, arrival_slot=0, seq=k)
            packet.stripe_size = size
            packet.stripe_id = k
            lsf.deliver(packet)
            per_output[output] = per_output.get(output, 0) + 1
        for output, count in per_output.items():
            for _ in range(count):
                assert lsf.serve(output) is not None
            assert lsf.serve(output) is None
        assert lsf.occupancy == 0
