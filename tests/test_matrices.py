"""Unit tests for traffic matrices (traffic/matrices.py)."""

import numpy as np
import pytest

from repro.traffic.matrices import (
    column_loads,
    diagonal_matrix,
    hotspot_matrix,
    is_admissible,
    lognormal_matrix,
    permutation_matrix,
    quasi_diagonal_matrix,
    row_loads,
    scale_to_load,
    uniform_matrix,
    validate_matrix,
)


class TestUniform:
    def test_row_and_column_loads(self):
        m = uniform_matrix(8, 0.8)
        assert np.allclose(row_loads(m), 0.8)
        assert np.allclose(column_loads(m), 0.8)

    def test_admissible_up_to_one(self):
        assert is_admissible(uniform_matrix(8, 1.0))
        assert not is_admissible(uniform_matrix(8, 1.01))


class TestDiagonal:
    def test_paper_definition(self):
        # P(j = i) = 1/2, others 1/(2(N-1)), scaled by load.
        n, load = 8, 0.9
        m = diagonal_matrix(n, load)
        assert np.allclose(np.diag(m), load / 2)
        off = m[0][1]
        assert np.isclose(off, load / (2 * (n - 1)))
        assert np.allclose(row_loads(m), load)
        assert np.allclose(column_loads(m), load)

    def test_needs_two_ports(self):
        with pytest.raises(ValueError):
            diagonal_matrix(1, 0.5)


class TestQuasiDiagonal:
    def test_loads_and_decay(self):
        m = quasi_diagonal_matrix(8, 0.8)
        assert np.allclose(row_loads(m), 0.8)
        assert np.allclose(column_loads(m), 0.8)
        # Strictly decaying away from the diagonal (first few steps).
        assert m[0][0] > m[0][1] > m[0][2]


class TestHotspot:
    def test_hot_column(self):
        m = hotspot_matrix(8, 0.4, hotspot_fraction=0.5)
        assert np.allclose(row_loads(m), 0.4)
        assert column_loads(m)[0] == pytest.approx(8 * 0.4 * 0.5)

    def test_admissibility_boundary(self):
        n = 8
        assert is_admissible(hotspot_matrix(n, 1.0 / (n * 0.5), 0.5))
        assert not is_admissible(hotspot_matrix(n, 0.5, 0.5))

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            hotspot_matrix(8, 0.5, hotspot_fraction=1.5)


class TestLognormal:
    def test_scaled_to_load(self, rng):
        m = lognormal_matrix(8, 0.9, sigma=1.0, rng=rng)
        peak = max(row_loads(m).max(), column_loads(m).max())
        assert np.isclose(peak, 0.9)
        assert is_admissible(m)

    def test_sigma_zero_is_uniformish(self, rng):
        m = lognormal_matrix(8, 0.8, sigma=0.0, rng=rng)
        assert np.allclose(m, m[0][0])

    def test_sigma_validated(self, rng):
        with pytest.raises(ValueError):
            lognormal_matrix(8, 0.8, sigma=-1.0, rng=rng)


class TestPermutation:
    def test_default_identity(self):
        m = permutation_matrix(4, 0.9)
        assert np.allclose(np.diag(m), 0.9)
        assert m.sum() == pytest.approx(4 * 0.9)

    def test_custom_permutation(self):
        m = permutation_matrix(4, 0.5, perm=[1, 0, 3, 2])
        assert m[0][1] == 0.5
        assert m[0][0] == 0.0
        assert is_admissible(m)


class TestHelpers:
    def test_scale_to_load(self):
        m = scale_to_load(np.ones((4, 4)), 0.6)
        assert row_loads(m).max() == pytest.approx(0.6)

    def test_scale_rejects_zero_matrix(self):
        with pytest.raises(ValueError):
            scale_to_load(np.zeros((4, 4)), 0.5)

    def test_validate_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            validate_matrix(np.ones((2, 3)))

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_matrix(np.array([[-0.1]]))
