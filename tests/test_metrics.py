"""Unit tests for measurement instruments (sim/metrics.py)."""

import math

import pytest

from repro.sim.metrics import DelayStats, SimulationMetrics, SimulationResult
from repro.switching.packet import Packet


def departed_packet(arrival, departure, seq=0, fake=False, i=0, j=0):
    p = Packet(input_port=i, output_port=j, arrival_slot=arrival, seq=seq, fake=fake)
    p.departure_slot = departure
    return p


class TestDelayStats:
    def test_mean_std(self):
        stats = DelayStats()
        for d in (2, 4, 6):
            stats.add(d)
        assert stats.mean == 4.0
        assert stats.std == pytest.approx(math.sqrt(8 / 3))
        assert stats.min == 2 and stats.max == 6

    def test_empty_is_nan(self):
        stats = DelayStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.std)

    def test_percentiles(self):
        stats = DelayStats()
        for d in range(101):
            stats.add(d)
        assert stats.percentile(0) == 0
        assert stats.percentile(50) == 50
        assert stats.percentile(100) == 100
        assert stats.percentile(99) == pytest.approx(99)

    def test_percentile_exact_without_samples(self):
        # Percentiles come from the exact histogram, so they work even
        # when per-packet samples were not retained; only the raw
        # samples accessor rejects.
        stats = DelayStats(keep_samples=False)
        for d in (5, 5, 9, 1):
            stats.add(d)
        assert stats.percentile(50) == 5.0
        assert stats.percentile(100) == 9.0
        assert stats.histogram == {5: 2, 9: 1, 1: 1}
        with pytest.raises(ValueError):
            stats.samples

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayStats().add(-1)

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            DelayStats().percentile(101)


class TestSimulationMetrics:
    def test_warmup_gating(self):
        metrics = SimulationMetrics()
        metrics.observe_departure(departed_packet(0, 5, seq=0), measure=False)
        metrics.observe_departure(departed_packet(10, 15, seq=1), measure=True)
        assert metrics.delays.count == 1
        assert metrics.delays.mean == 5.0

    def test_ordering_checked_even_during_warmup(self):
        metrics = SimulationMetrics()
        metrics.observe_departure(departed_packet(0, 5, seq=3), measure=False)
        metrics.observe_departure(departed_packet(1, 6, seq=0), measure=False)
        assert metrics.reordering.late_packets == 1

    def test_fakes_not_measured(self):
        metrics = SimulationMetrics()
        metrics.observe_departure(departed_packet(0, 5, fake=True), measure=True)
        assert metrics.delays.count == 0
        assert metrics.fake_departures == 1


class TestSimulationResult:
    def make_result(self, **overrides):
        metrics = SimulationMetrics()
        for k in range(10):
            metrics.observe_departure(departed_packet(k, k + 7, seq=k), True)
        kwargs = dict(
            switch_name="test",
            n=8,
            load=0.5,
            slots=100,
            warmup=10,
            metrics=metrics,
            injected=12,
            departed=10,
        )
        kwargs.update(overrides)
        return SimulationResult(**kwargs)

    def test_summary_fields(self):
        result = self.make_result()
        assert result.mean_delay == 7.0
        assert result.is_ordered
        assert result.throughput == pytest.approx(0.1)
        assert result.measured_packets == 10

    def test_as_row_flat_dict(self):
        row = self.make_result(extras={"padding": 0.25}).as_row()
        assert row["switch"] == "test"
        assert row["padding"] == 0.25
        assert "mean_delay" in row


class TestDelayConfidenceInterval:
    def test_ci_from_retained_samples(self):
        from repro.sim.experiment import run_single
        from repro.traffic.matrices import uniform_matrix

        result = run_single(
            "load-balanced", uniform_matrix(8, 0.6), 4000, seed=1,
            keep_samples=True,
        )
        ci = result.delay_ci(batches=10)
        low, high = ci.interval
        assert low < result.mean_delay * 1.1
        assert high > result.mean_delay * 0.9

    def test_ci_requires_samples(self):
        from repro.sim.experiment import run_single
        from repro.traffic.matrices import uniform_matrix

        result = run_single(
            "load-balanced", uniform_matrix(8, 0.6), 1000, seed=1,
            keep_samples=False,
        )
        with pytest.raises(ValueError):
            result.delay_ci()
