"""Unit tests for permutation utilities (core/permutation.py)."""

import numpy as np
import pytest

from repro.core.permutation import (
    compose_permutations,
    cyclic_shift_permutation,
    durstenfeld_shuffle,
    identity_permutation,
    inverse_permutation,
    is_permutation,
    random_permutation,
)


class TestIsPermutation:
    def test_valid(self):
        assert is_permutation([0])
        assert is_permutation([2, 0, 1])
        assert is_permutation(list(range(100)))

    def test_invalid(self):
        assert not is_permutation([0, 0])
        assert not is_permutation([1, 2])
        assert not is_permutation([-1, 0])
        assert not is_permutation([0, 2])


class TestRandomPermutation:
    def test_is_permutation(self, rng):
        for n in (1, 2, 5, 64):
            assert is_permutation(random_permutation(n, rng))

    def test_deterministic_for_seed(self):
        a = random_permutation(32, np.random.default_rng(5))
        b = random_permutation(32, np.random.default_rng(5))
        assert a == b

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            random_permutation(0, rng)

    def test_uniformity_chi_square(self, rng):
        # Each of the 3! = 6 permutations of 3 elements should appear about
        # equally often.  Chi-square with 5 dof: crit ~ 20 at p ~ 0.999.
        counts = {}
        trials = 6000
        for _ in range(trials):
            p = tuple(random_permutation(3, rng))
            counts[p] = counts.get(p, 0) + 1
        assert len(counts) == 6
        expected = trials / 6
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi2 < 20.0

    def test_positions_marginally_uniform(self, rng):
        # P(perm[0] == v) should be ~ 1/n for each v.
        n = 8
        trials = 8000
        counts = np.zeros(n)
        for _ in range(trials):
            counts[random_permutation(n, rng)[0]] += 1
        expected = trials / n
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30.0  # 7 dof


class TestShuffleAndHelpers:
    def test_durstenfeld_preserves_elements(self, rng):
        items = list("abcdefgh")
        shuffled = durstenfeld_shuffle(items[:], rng)
        assert sorted(shuffled) == sorted(items)

    def test_identity(self):
        assert identity_permutation(4) == [0, 1, 2, 3]

    def test_cyclic_shift(self):
        assert cyclic_shift_permutation(4, 1) == [1, 2, 3, 0]
        assert is_permutation(cyclic_shift_permutation(9, 5))

    def test_inverse(self):
        perm = [2, 0, 3, 1]
        inv = inverse_permutation(perm)
        assert compose_permutations(perm, inv) == [0, 1, 2, 3]
        assert compose_permutations(inv, perm) == [0, 1, 2, 3]

    def test_inverse_random(self, rng):
        perm = random_permutation(32, rng)
        assert compose_permutations(perm, inverse_permutation(perm)) == list(
            range(32)
        )

    def test_compose_length_mismatch(self):
        with pytest.raises(ValueError):
            compose_permutations([0, 1], [0])
