"""Unit tests for the packet source (traffic/generator.py)."""

import numpy as np
import pytest

from repro.traffic.arrivals import TraceArrivals
from repro.traffic.generator import FlowModel, TrafficGenerator, bernoulli_traffic
from repro.traffic.matrices import diagonal_matrix, uniform_matrix


class TestDrawDestinations:
    def test_bit_identical_to_generator_choice(self):
        """The precomputed-CDF fast path must consume and produce exactly
        what the historical per-input ``rng.choice(n, size, p)`` calls
        did — this is what keeps old seeded runs (and the experiment
        store's cached results) valid."""
        from repro.traffic.generator import (
            destination_distributions,
            draw_destinations,
        )

        n = 8
        matrix = diagonal_matrix(n, 0.7)
        _, _, dists = destination_distributions(matrix)
        events = np.random.default_rng(9).integers(0, n, 500)
        fast_rng = np.random.default_rng(31)
        fast = draw_destinations(fast_rng, events, dists, n)
        ref_rng = np.random.default_rng(31)
        ref = np.empty(len(events), dtype=np.int64)
        for inp in np.unique(events):
            mask = events == inp
            ref[mask] = ref_rng.choice(n, size=int(mask.sum()), p=dists[inp])
        assert np.array_equal(fast, ref)
        # Stream positions agree afterwards too.
        assert fast_rng.random() == ref_rng.random()

    def test_idle_input_falls_back_to_uniform(self):
        from repro.traffic.generator import draw_destinations

        dests = draw_destinations(
            np.random.default_rng(0), np.zeros(50, dtype=np.int64),
            [None, None], 2,
        )
        assert set(np.unique(dests)) <= {0, 1}


class TestTrafficGenerator:
    def test_slot_stream_is_complete_and_ordered(self, rng):
        gen = TrafficGenerator(uniform_matrix(4, 0.5), rng)
        slots_seen = [slot for slot, _ in gen.slots(100)]
        assert slots_seen == list(range(100))

    def test_sequence_numbers_per_voq(self, rng):
        gen = TrafficGenerator(uniform_matrix(4, 0.9), rng)
        seqs = {}
        for slot, packets in gen.slots(2000):
            for p in packets:
                expected = seqs.get(p.voq, 0)
                assert p.seq == expected
                seqs[p.voq] = expected + 1

    def test_arrival_rate_matches_matrix(self, rng):
        gen = TrafficGenerator(uniform_matrix(4, 0.6), rng)
        total = sum(len(pkts) for _, pkts in gen.slots(20_000))
        assert total == pytest.approx(0.6 * 4 * 20_000, rel=0.05)

    def test_destination_distribution(self, rng):
        matrix = diagonal_matrix(4, 0.8)
        gen = TrafficGenerator(matrix, rng)
        diag = 0
        total = 0
        for _, packets in gen.slots(20_000):
            for p in packets:
                total += 1
                if p.output_port == p.input_port:
                    diag += 1
        assert diag / total == pytest.approx(0.5, abs=0.02)

    def test_rejects_oversubscribed_rows(self, rng):
        with pytest.raises(ValueError):
            TrafficGenerator(uniform_matrix(4, 1.2), rng)

    def test_custom_arrival_process(self, rng):
        trace = TraceArrivals(2, [(0, 0), (3, 1)])
        gen = TrafficGenerator(
            uniform_matrix(2, 0.5), rng, arrivals=trace
        )
        packets = [p for _, pkts in gen.slots(5) for p in pkts]
        assert len(packets) == 2
        assert packets[0].arrival_slot == 0
        assert packets[1].arrival_slot == 3

    def test_arrival_size_mismatch_rejected(self, rng):
        trace = TraceArrivals(3, [])
        with pytest.raises(ValueError):
            TrafficGenerator(uniform_matrix(2, 0.5), rng, arrivals=trace)

    def test_same_slot_packets_sorted_by_input(self, rng):
        gen = TrafficGenerator(uniform_matrix(8, 1.0), rng)
        for _, packets in gen.slots(50):
            inputs = [p.input_port for p in packets]
            assert inputs == sorted(inputs)

    def test_deterministic_for_seed(self):
        def collect(seed):
            gen = bernoulli_traffic(uniform_matrix(4, 0.5), seed=seed)
            return [
                (slot, p.input_port, p.output_port)
                for slot, pkts in gen.slots(200)
                for p in pkts
            ]

        assert collect(5) == collect(5)
        assert collect(5) != collect(6)


class TestFlowModel:
    def test_flow_ids_unique_across_voqs(self, rng):
        model = FlowModel(flows_per_voq=10, zipf_exponent=1.0, rng=rng)
        id_a = model.draw_flow(0, 0, 4)
        id_b = model.draw_flow(1, 0, 4)
        # Different VOQs occupy disjoint id ranges.
        assert id_a // 10 != id_b // 10

    def test_zipf_skew(self, rng):
        model = FlowModel(flows_per_voq=20, zipf_exponent=1.5, rng=rng)
        draws = [model.draw_flow(0, 0, 4) % 20 for _ in range(3000)]
        top = sum(1 for d in draws if d == 0)
        assert top > 0.3 * len(draws)  # heavy head

    def test_zero_exponent_is_uniform(self, rng):
        model = FlowModel(flows_per_voq=4, zipf_exponent=0.0, rng=rng)
        draws = [model.draw_flow(0, 0, 4) % 4 for _ in range(4000)]
        counts = np.bincount(draws, minlength=4)
        assert counts.min() > 0.8 * counts.max()

    def test_packets_get_flow_ids(self, rng):
        model = FlowModel(flows_per_voq=5, zipf_exponent=1.0, rng=np.random.default_rng(1))
        gen = TrafficGenerator(uniform_matrix(4, 0.8), rng, flow_model=model)
        packets = [p for _, pkts in gen.slots(100) for p in pkts]
        assert packets
        assert all(p.flow_id is not None for p in packets)

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            FlowModel(0, 1.0, rng)
        with pytest.raises(ValueError):
            FlowModel(5, -1.0, rng)
