"""Tests for packet-trace recording and replay (traffic/trace_io.py)."""

import numpy as np
import pytest

from repro.core.sprinklers_switch import SprinklersSwitch
from repro.sim.metrics import SimulationMetrics
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix
from repro.traffic.trace_io import (
    read_trace,
    record_trace,
    replay_generator,
    trace_to_arrival_process,
    write_trace,
)


def make_events(n=4, slots=200, seed=5):
    gen = TrafficGenerator(uniform_matrix(n, 0.6), np.random.default_rng(seed))
    return record_trace(gen, slots)


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        events = make_events()
        path = tmp_path / "trace.csv"
        count = write_trace(path, events)
        assert count == len(events)
        assert read_trace(path) == events

    def test_flow_ids_survive(self, tmp_path):
        from repro.traffic.generator import FlowModel

        rng = np.random.default_rng(1)
        gen = TrafficGenerator(
            uniform_matrix(4, 0.5),
            rng,
            flow_model=FlowModel(4, 1.0, np.random.default_rng(2)),
        )
        events = record_trace(gen, 100)
        path = tmp_path / "flows.csv"
        write_trace(path, events)
        back = read_trace(path)
        assert back == events
        assert any(e[3] is not None for e in back)

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_gzip_round_trip(self, tmp_path):
        """*.csv.gz traces round-trip transparently (and really compress)."""
        events = make_events(slots=2000)
        plain = tmp_path / "trace.csv"
        packed = tmp_path / "trace.csv.gz"
        assert write_trace(plain, events) == write_trace(packed, events)
        assert read_trace(packed) == events
        assert read_trace(packed) == read_trace(plain)
        # It must actually be gzip (magic bytes), and meaningfully smaller.
        raw = packed.read_bytes()
        assert raw[:2] == b"\x1f\x8b"
        assert len(raw) < plain.stat().st_size / 2

    def test_gzip_content_is_the_same_csv(self, tmp_path):
        import gzip

        events = make_events(slots=50)
        plain = tmp_path / "t.csv"
        packed = tmp_path / "t.csv.gz"
        write_trace(plain, events)
        write_trace(packed, events)
        with gzip.open(packed, "rt", newline="") as handle:
            unpacked = handle.read()
        with open(plain, newline="") as handle:
            assert unpacked == handle.read()


class TestReplay:
    def test_replay_produces_identical_packets(self):
        events = make_events()
        source = replay_generator(4, events)
        replayed = [
            (slot, p.input_port, p.output_port, p.flow_id)
            for slot, packets in source.slots(200)
            for p in packets
        ]
        assert replayed == events
        assert source.generated == len(events)

    def test_replay_drives_a_switch_identically(self):
        # Same trace -> bit-identical simulation result.
        n = 4
        matrix = uniform_matrix(n, 0.6)
        events = make_events(n=n, slots=400, seed=9)

        def run(source):
            switch = SprinklersSwitch.from_rates(matrix, seed=3)
            metrics = SimulationMetrics()
            for slot, packets in source.slots(400):
                for p in switch.step(slot, packets):
                    metrics.observe_departure(p, measure=True)
            for p in switch.drain(200):
                metrics.observe_departure(p, measure=True)
            return metrics.delays.count, metrics.delays.mean

        first = run(replay_generator(n, events))
        second = run(replay_generator(n, events))
        assert first == second
        assert first[0] > 0

    def test_replay_validates_events(self):
        with pytest.raises(ValueError):
            replay_generator(4, [(5, 0, 0, None), (1, 0, 0, None)])
        with pytest.raises(ValueError):
            replay_generator(2, [(0, 5, 0, None)])

    def test_truncated_replay_warns(self, caplog):
        """Regression: events at slot >= num_slots were silently dropped,
        undercounting `generated` and skewing throughput metrics.  The
        warning now goes through the telemetry logger (deprecation-style
        successor of the old ``warnings.warn`` path) plus a counter."""
        from repro import telemetry

        events = [(0, 0, 1, None), (5, 1, 2, None), (9, 2, 3, None)]
        source = replay_generator(4, events)
        with telemetry.scope() as tel:
            with caplog.at_level("WARNING", logger="repro"):
                consumed = [
                    (slot, len(packets)) for slot, packets in source.slots(6)
                ]
        assert any(
            "truncates the trace" in rec.message for rec in caplog.records
        )
        assert tel.registry.counter("trace.truncated_events").value == 1
        assert len(consumed) == 6
        assert source.generated == 2  # the slot-9 event never injects

    def test_full_replay_does_not_warn(self, caplog):
        events = make_events(slots=50)
        source = replay_generator(4, events)
        with caplog.at_level("WARNING", logger="repro"):
            for _slot, _packets in source.slots(50):
                pass
        assert not any(
            "truncates the trace" in rec.message for rec in caplog.records
        )
        assert source.generated == len(events)

    def test_replay_slots_signature_has_no_chunk_arg(self):
        """The unused chunk_slots parameter is gone for good."""
        import inspect

        source = replay_generator(4, [])
        params = inspect.signature(source.slots).parameters
        assert list(params) == ["num_slots"]

    def test_exported_in_all(self):
        import repro.traffic.trace_io as trace_io

        assert "trace_to_arrival_process" in trace_io.__all__

    def test_arrival_skeleton_projection(self):
        events = [(0, 1, 3, None), (2, 0, 2, 7)]
        proc = trace_to_arrival_process(4, events)
        slots, inputs = proc.chunk(0, 5)
        assert slots.tolist() == [0, 2]
        assert inputs.tolist() == [1, 0]
