"""Property tests: every registered scenario stays admissible.

The paper's guarantees (Theorems 1-2, the delay model) hold only for
admissible traffic — no input or output line oversubscribed.  Scenario
matrix families are arbitrary-shape by design (hotspots and stride
patterns oversubscribe columns *before* rescaling), so the subsystem's
contract is that the *effective* matrix — the shape rescaled to the
target load — is admissible for every registered scenario, every load in
(0, 1], and every switch size, including the N=2 and load→0 edges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    effective_matrix,
    get_scenario,
    list_scenarios,
    matrix_shape,
)
from repro.traffic.matrices import is_admissible, scale_to_load

SIZES = (2, 8, 32)


@pytest.mark.parametrize("name", list_scenarios())
@given(
    load=st.floats(
        min_value=1e-12,
        max_value=1.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    n=st.sampled_from(SIZES),
)
@example(load=1e-12, n=2)  # load -> 0 on the smallest switch
@example(load=1.0, n=32)  # full saturation at paper scale
@settings(max_examples=40, deadline=None)
def test_effective_matrix_admissible(name, load, n):
    matrix = effective_matrix(get_scenario(name), n, load)
    assert matrix.shape == (n, n)
    assert np.all(matrix >= 0)
    assert is_admissible(matrix)
    # scale_to_load's contract: the binding line sits exactly at `load`.
    peak = max(matrix.sum(axis=1).max(), matrix.sum(axis=0).max())
    assert peak == pytest.approx(load, rel=1e-9)


@pytest.mark.parametrize("name", list_scenarios())
@pytest.mark.parametrize("n", SIZES)
def test_effective_matrix_at_zero_load(name, n):
    """The load->0 limit itself: an all-zero (trivially admissible) matrix."""
    matrix = effective_matrix(get_scenario(name), n, 0.0)
    assert np.all(matrix == 0)
    assert is_admissible(matrix)


@pytest.mark.parametrize("name", list_scenarios())
@given(n=st.sampled_from(SIZES))
@settings(max_examples=len(SIZES), deadline=None)
def test_scenario_shapes_scale_consistently(name, n):
    """scale_to_load is idempotent on an already-scaled effective matrix."""
    spec = get_scenario(name)
    matrix = effective_matrix(spec, n, 0.8)
    rescaled = scale_to_load(matrix, 0.8)
    assert np.allclose(matrix, rescaled)


@given(
    load=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    n=st.sampled_from(SIZES),
    weight=st.floats(min_value=0.1, max_value=64.0),
)
@settings(max_examples=40, deadline=None)
def test_hotspot_family_admissible_for_any_weight(load, n, weight):
    """The family behind hotspot-4x, across its whole parameter range."""
    shape = matrix_shape({"family": "hotspot", "weight": weight}, n)
    assert is_admissible(scale_to_load(shape, load))


@given(
    load=st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    n=st.sampled_from(SIZES),
    stride=st.integers(min_value=1, max_value=33),
)
@settings(max_examples=40, deadline=None)
def test_stride_family_admissible_for_any_stride(load, n, stride):
    """Colliding strides oversubscribe columns pre-scaling; never after."""
    shape = matrix_shape({"family": "stride", "stride": stride}, n)
    assert is_admissible(scale_to_load(shape, load))
