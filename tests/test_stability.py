"""Tests for Theorem 1 and the Monte-Carlo overload machinery (analysis/stability.py)."""

import numpy as np
import pytest

from repro.analysis.chernoff import overload_probability_bound
from repro.analysis.stability import (
    max_load_over_permutations_mc,
    overload_probability_mc,
    queue_arrival_rate,
    theorem1_threshold,
    worst_case_rates,
)
from repro.core.permutation import random_permutation


class TestTheorem1Threshold:
    def test_value(self):
        assert theorem1_threshold(2) == pytest.approx(0.75)
        assert theorem1_threshold(1024) == pytest.approx(2 / 3, abs=1e-5)

    def test_approaches_two_thirds(self):
        assert theorem1_threshold(4096) > 2 / 3
        assert theorem1_threshold(4096) - 2 / 3 < 1e-7


class TestWorstCaseRates:
    @pytest.mark.parametrize("n", [4, 8, 16, 64, 256])
    def test_total_equals_threshold(self, n):
        assert sum(worst_case_rates(n)) == pytest.approx(theorem1_threshold(n))

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_attains_exactly_one_over_n(self, n):
        # Under the identity placement the extremal vector drives the
        # queue to exactly its service rate 1/N (the Lemma 1 construction).
        rates = worst_case_rates(n)
        x = queue_arrival_rate(rates, list(range(n)), n)
        assert x == pytest.approx(1.0 / n)

    def test_scale(self):
        rates = worst_case_rates(8, scale=0.5)
        assert sum(rates) == pytest.approx(0.5 * theorem1_threshold(8))

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            worst_case_rates(2)
        with pytest.raises(ValueError):
            worst_case_rates(12)


class TestQueueArrivalRate:
    def test_single_voq_full_width(self):
        # A rate-1/2 VOQ stripes across all N ports: contributes 1/(2N)
        # wherever its primary lands.
        n = 8
        rates = [0.5] + [0.0] * (n - 1)
        for primary in range(n):
            sigma = list(range(n))
            sigma[0], sigma[primary] = sigma[primary], sigma[0]
            assert queue_arrival_rate(rates, sigma, n) == pytest.approx(
                0.5 / n
            )

    def test_narrow_stripe_misses_queue(self):
        # A small VOQ placed away from port 0 contributes nothing.
        n = 8
        rates = [1.0 / (n * n)] + [0.0] * (n - 1)  # size-1 stripe
        sigma = list(range(n))
        sigma[0], sigma[5] = sigma[5], sigma[0]  # primary port 5
        assert queue_arrival_rate(rates, sigma, n) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            queue_arrival_rate([0.1], [0, 1], 2)


class TestTheorem1MonteCarlo:
    def test_below_threshold_never_overloads(self, rng):
        # Theorem 1 is an almost-sure statement: every sampled placement
        # of a below-threshold rate vector stays under 1/N.
        n = 32
        rates = worst_case_rates(n, scale=0.999)
        worst = max_load_over_permutations_mc(rates, n, 2000, rng)
        assert worst < 1.0 / n

    def test_generic_below_threshold_vectors(self, rng):
        n = 16
        for trial in range(5):
            raw = rng.random(n)
            rates = raw / raw.sum() * 0.6  # total load 0.6 < 2/3
            worst = max_load_over_permutations_mc(list(rates), n, 500, rng)
            assert worst < 1.0 / n

    def test_above_threshold_can_overload(self, rng):
        # At scale 1 the extremal vector overloads under *some* placements
        # (e.g. identity); MC over enough trials should find one for small N.
        n = 8
        rates = worst_case_rates(n)
        prob = overload_probability_mc(rates, n, 4000, rng)
        assert prob > 0.0

    def test_mc_probability_within_chernoff_bound(self, rng):
        # The empirical overload probability of any specific rate vector
        # must respect the worst-case bound... the bound is worst-case over
        # vectors, so it dominates (sampling noise aside).
        n = 64
        rho = 0.95
        raw = rng.random(n)
        rates = list(raw / raw.sum() * rho)
        empirical = overload_probability_mc(rates, n, 2000, rng)
        bound = overload_probability_bound(rho, n)
        # For such small N the bound is weak (can exceed 1); just demand
        # consistency.
        assert empirical <= min(bound, 1.0) + 0.05

    def test_shares_zeroed_for_idle_voqs(self, rng):
        n = 8
        rates = [0.0] * n
        assert overload_probability_mc(rates, n, 10, rng) == 0.0
