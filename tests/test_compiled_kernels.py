"""Compiled kernel backend: bit parity, selection plumbing, key invariance.

The compiled backend (``repro.sim.kernels.compiled``) must be
indistinguishable from the NumPy reference in every observable — the
parity grid here compares the *entire* ``to_dict`` payload (extras
included) across every kernel switch, switch size, workload shape, and
both the monolithic and streamed replay forms.  Without numba installed
(the default container) the compiled passes run as pure Python, which is
the same arithmetic, so these tests are meaningful everywhere.

The remaining classes pin the plumbing around the kernels: backend
selection (global, scoped, per-run), the deliberate *exclusion* of the
backend from store cache keys, the fused-metrics histogram contract
(exact percentiles with and without retained samples), serialization
round-trips, and the service shard transport.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.model import Capability, SwitchModel
from repro.sim.experiment import resolve_run_params, run_single
from repro.sim.kernels.compiled import (
    KERNEL_BACKENDS,
    compiled_active,
    get_kernel_backend,
    kernel_backend,
    resolve_compiled_passes,
    set_kernel_backend,
)
from repro.sim.metrics import DelayStats, SimulationResult
from repro.store import ExperimentStore, cache_key
from repro.traffic.matrices import (
    diagonal_matrix,
    hotspot_matrix,
    quasi_diagonal_matrix,
    uniform_matrix,
)

KERNEL_SWITCHES = (
    "sprinklers",
    "ufs",
    "foff",
    "pf",
    "load-balanced",
    "output-queued",
)

WORKLOADS = (
    ("uniform-hot", lambda n: uniform_matrix(n, 0.9)),
    ("uniform-light", lambda n: uniform_matrix(n, 0.3)),
    ("diagonal", lambda n: diagonal_matrix(n, 0.85)),
    ("quasi-diag+hotspot", lambda n: (
        0.5 * quasi_diagonal_matrix(n, 0.8) + 0.5 * hotspot_matrix(n, 0.8)
    )),
)


@pytest.fixture(autouse=True)
def _numpy_backend_restored():
    """Every test starts and ends on the reference backend."""
    set_kernel_backend("numpy")
    yield
    set_kernel_backend("numpy")


def _run(switch, matrix, slots, backend, window_slots=None):
    return run_single(
        switch,
        matrix,
        slots,
        seed=7,
        load_label=0.8,
        engine="vectorized",
        keep_samples=True,
        backend=backend,
        window_slots=window_slots,
    )


class TestParityGrid:
    """Compiled == NumPy, bit for bit, across the whole kernel surface."""

    @pytest.mark.parametrize("n", (2, 8, 32))
    @pytest.mark.parametrize("switch", KERNEL_SWITCHES)
    def test_backend_parity(self, switch, n):
        slots = 24 * n + 160
        for label, make in WORKLOADS:
            matrix = make(n)
            ref = _run(switch, matrix, slots, "numpy")
            com = _run(switch, matrix, slots, "compiled")
            assert com.to_dict() == ref.to_dict(), (switch, n, label)
            # The streamed (windowed) replay dispatches the same compiled
            # passes window by window; parity must survive the carry
            # state (pending CSR tags, polled cursors, fold prev-max).
            strm = _run(switch, matrix, slots, "compiled", window_slots=48)
            assert strm.to_dict() == ref.to_dict(), (switch, n, label)

    def test_parameterized_kernel_parity(self):
        # PF's threshold is declared kernel-honored; the compiled
        # formation must follow it identically.
        matrix = uniform_matrix(8, 0.9)
        for threshold in (1, 3, 8):
            ref = run_single(
                "pf", matrix, 400, seed=3, engine="vectorized",
                switch_params={"threshold": threshold},
            )
            com = run_single(
                "pf", matrix, 400, seed=3, engine="vectorized",
                switch_params={"threshold": threshold}, backend="compiled",
            )
            assert com.to_dict() == ref.to_dict(), threshold

    def test_compiled_matches_object_oracle(self):
        matrix = diagonal_matrix(8, 0.9)
        obj = run_single(
            "sprinklers", matrix, 500, seed=7, load_label=0.8,
            engine="object",
        )
        com = _run("sprinklers", matrix, 500, "compiled")
        assert com.to_dict() == obj.to_dict()


class TestBackendSelection:
    def test_known_backends(self):
        assert KERNEL_BACKENDS == ("numpy", "compiled")
        assert get_kernel_backend() == "numpy"
        assert not compiled_active()

    def test_set_and_reset(self):
        set_kernel_backend("compiled")
        assert compiled_active()
        set_kernel_backend("numpy")
        assert not compiled_active()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_kernel_backend("fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_single(
                "sprinklers", uniform_matrix(2, 0.5), 50,
                engine="vectorized", backend="fortran",
            )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_run_params(
                "sprinklers", uniform_matrix(2, 0.5), 50, backend="fortran"
            )

    def test_context_manager_scopes_and_restores(self):
        with kernel_backend("compiled"):
            assert compiled_active()
            with kernel_backend(None):  # None = keep whatever is active
                assert compiled_active()
        assert not compiled_active()

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with kernel_backend("compiled"):
                raise RuntimeError("boom")
        assert get_kernel_backend() == "numpy"

    def test_run_single_backend_does_not_leak(self):
        _run("sprinklers", uniform_matrix(2, 0.5), 60, "compiled")
        assert get_kernel_backend() == "numpy"

    def test_resolve_compiled_passes(self):
        from repro import models

        for name in KERNEL_SWITCHES:
            model = models.get(name)
            passes = resolve_compiled_passes(model.kernel.__module__)
            assert passes and all(callable(p) for p in passes), name
        # Frame switches additionally resolve the formation stepper.
        pf_passes = resolve_compiled_passes(models.get("pf").kernel.__module__)
        oq_passes = resolve_compiled_passes(
            models.get("output-queued").kernel.__module__
        )
        assert len(pf_passes) == len(oq_passes) + 1


class TestCapability:
    def test_compiled_derived_from_kernel(self):
        from repro import models

        for name in KERNEL_SWITCHES:
            assert Capability.COMPILED in models.get(name).capabilities, name
        for name in ("cms", "tcp-hashing", "sprinklers-adaptive"):
            assert Capability.COMPILED not in models.get(name).capabilities

    def test_compiled_without_kernel_rejected(self):
        with pytest.raises(ValueError, match="compiled"):
            SwitchModel(
                name="bogus",
                builder=lambda n, matrix, seed: None,
                capabilities=frozenset({Capability.COMPILED}),
            )


class TestStoreKeyInvariance:
    def test_backend_not_in_cache_key(self):
        matrix = uniform_matrix(4, 0.7)
        base = resolve_run_params("sprinklers", matrix, 200, seed=1)
        for backend in KERNEL_BACKENDS:
            params = resolve_run_params(
                "sprinklers", matrix, 200, seed=1, backend=backend
            )
            assert params == base
            assert cache_key(params) == cache_key(base)

    def test_compiled_run_is_cache_hit_for_numpy(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        matrix = uniform_matrix(4, 0.8)
        kwargs = dict(
            num_slots=240, seed=2, load_label=0.8, engine="vectorized",
            store=store,
        )
        first = run_single(
            "sprinklers", matrix, backend="compiled", **kwargs
        )
        assert store.stats().saves == 1
        second = run_single("sprinklers", matrix, backend="numpy", **kwargs)
        assert store.stats().saves == 1  # hit, not a recompute
        assert second.to_dict() == first.to_dict()


class TestFusedMetrics:
    def test_histogram_percentiles_match_retained(self):
        matrix = uniform_matrix(8, 0.9)
        kwargs = dict(num_slots=400, seed=4, engine="vectorized")
        fused = run_single(
            "sprinklers", matrix, keep_samples=False, **kwargs
        )
        retained = run_single(
            "sprinklers", matrix, keep_samples=True, **kwargs
        )
        assert fused._delay_samples == []
        assert fused.p50_delay == retained.p50_delay
        assert fused.p99_delay == retained.p99_delay
        assert fused._delay_histogram == retained._delay_histogram
        assert (
            sum(fused._delay_histogram.values()) == fused.measured_packets
        )

    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.integers(min_value=0, max_value=500), min_size=1, max_size=400
        ),
        q=st.one_of(
            st.integers(min_value=0, max_value=100),
            st.floats(
                min_value=0.0, max_value=100.0,
                allow_nan=False, allow_infinity=False,
            ),
        ),
    )
    def test_histogram_percentile_pins_numpy(self, samples, q):
        stats = DelayStats(keep_samples=False)
        for s in samples:
            stats.add(s)
        assert stats.percentile(q) == pytest.approx(
            float(np.percentile(samples, q)), rel=1e-12, abs=1e-12
        )

    def test_empty_stats_percentile_nan(self):
        assert math.isnan(DelayStats(keep_samples=False).percentile(50))


class TestSerialization:
    def _result(self):
        return run_single(
            "sprinklers", uniform_matrix(4, 0.8), 240, seed=6,
            engine="vectorized", keep_samples=True,
        )

    def test_round_trip_with_samples(self):
        result = self._result()
        data = result.to_dict(include_samples=True)
        assert data["delay_samples"]
        assert data["delay_histogram"]
        back = SimulationResult.from_dict(data)
        assert back.to_dict() == data
        assert back._delay_histogram == result._delay_histogram
        back.delay_ci()  # samples survived the trip

    def test_round_trip_without_samples(self):
        result = self._result()
        data = result.to_dict(include_samples=False)
        assert "delay_samples" not in data
        assert data["delay_histogram"]
        back = SimulationResult.from_dict(data)
        # Everything except the raw samples survives — including the
        # exact percentiles, which come from the histogram.
        assert back.p50_delay == result.p50_delay
        assert back.p99_delay == result.p99_delay
        assert back._delay_histogram == result._delay_histogram
        assert back.to_dict(include_samples=False) == data
        with pytest.raises(ValueError):
            back.delay_ci()

    def test_store_omits_samples_for_fused_runs(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        matrix = uniform_matrix(4, 0.8)
        run_single(
            "sprinklers", matrix, 240, seed=6, engine="vectorized",
            keep_samples=False, store=store,
        )
        params = resolve_run_params(
            "sprinklers", matrix, 240, seed=6, engine="vectorized",
            keep_samples=False,
        )
        payload = store.backend.get(cache_key(params))
        assert "delay_samples" not in payload["result"]
        assert payload["result"]["delay_histogram"]


class TestShardTransport:
    def test_shard_round_trip_with_backend(self):
        from repro.service.jobs import JobRequest, ShardSpec, expand_shards

        request = JobRequest(
            workload="uniform",
            switches=("sprinklers",),
            loads=(0.5,),
            n=4,
            num_slots=100,
            engine="vectorized",
            backend="compiled",
        )
        assert JobRequest.from_dict(request.to_dict()) == request
        (shard,) = expand_shards(request)
        assert shard.backend == "compiled"
        assert ShardSpec.from_dict(shard.to_dict()) == shard
        # Legacy payloads (no backend field) still parse.
        legacy = {
            k: v for k, v in shard.to_dict().items() if k != "backend"
        }
        assert ShardSpec.from_dict(legacy).backend is None

    def test_shard_key_invariant_to_backend(self):
        from repro.service.jobs import ShardSpec, shard_key

        base = dict(
            switch="sprinklers", workload="uniform", n=4, load=0.5,
            num_slots=100, seed=0, engine="vectorized",
        )
        keys = {
            shard_key(ShardSpec(backend=backend, **base))
            for backend in (None, "numpy", "compiled")
        }
        assert len(keys) == 1
