"""Formation parity: the array-stepped engine vs the scalar reference.

The vectorized PF/FOFF kernels replaced their per-input, per-cycle Python
recursion with the lock-step lane engine of
:mod:`repro.sim.kernels.frames` (:class:`_LaneFormation`).  The original
scalar recursion (:data:`Picker` closures driving
:class:`_InputFormation`) survives as a genuinely independent
implementation, and this suite pins the engine against it *frame for
frame*: the same (VOQ, start rank, size, fake cells, formation slot)
multiset — and the same per-VOQ formation order — for PF and FOFF across
switch sizes, workloads, and monolithic vs streamed (windowed) replay,
drain quiescence included.

Frame-for-frame equality is strictly stronger than the engine parity
tests (which compare end-of-pipeline metrics): a formation bug that
happened to cancel downstream would still fail here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.build import build_batch_traffic
from repro.scenarios.registry import get_scenario
from repro.sim.kernels.frames import (
    FormationRule,
    FrameFormationStream,
    ReferenceFormationStream,
    build_frame_schedule,
    foff_rule,
    pf_rule,
    reference_frame_schedule,
)
from repro.sim.rng import derive_seed
from repro.traffic.batch import BatchTrafficGenerator
from repro.traffic.matrices import diagonal_matrix, uniform_matrix

#: Name -> batch-traffic factory ``(n, seed, slots) -> generator``.  Two
#: §6 matrix families plus two registered scenarios (bursty on/off and
#: fan-in incast — clumped arrivals stress the idle-span skip hardest).
WORKLOADS = {
    "uniform": lambda n, seed, slots: BatchTrafficGenerator(
        uniform_matrix(n, 0.85),
        np.random.default_rng(derive_seed(seed, "traffic")),
    ),
    "diagonal": lambda n, seed, slots: BatchTrafficGenerator(
        diagonal_matrix(n, 0.6),
        np.random.default_rng(derive_seed(seed, "traffic")),
    ),
    "mmpp-bursty": lambda n, seed, slots: build_batch_traffic(
        get_scenario("mmpp-bursty"), n, 0.8, seed, slots
    ),
    "incast": lambda n, seed, slots: build_batch_traffic(
        get_scenario("incast"), n, 0.75, seed, slots
    ),
}
SLOTS = 900
WINDOWS = (97, 400)


def rules_for(n: int):
    return {
        "pf": pf_rule(max(1, n // 2)),
        "pf-thr2": pf_rule(min(2, n)),
        "foff": foff_rule(),
    }


def canonical(schedule):
    """Frames sorted by (voq, start) — the only order the kernels rely on."""
    order = np.lexsort((schedule.start, schedule.voq))
    return tuple(
        field[order]
        for field in (
            schedule.voq,
            schedule.start,
            schedule.size,
            schedule.fakes,
            schedule.slot,
        )
    )


def assert_schedules_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(canonical(got), canonical(want)):
        np.testing.assert_array_equal(a, b)
    # Per-VOQ formation order (what frame_membership / FramedPacketBuffer
    # key on): within a VOQ, starts must ascend in emission order.
    for schedule in (got, want):
        f_order = np.argsort(schedule.voq, kind="stable")
        voq_s = schedule.voq[f_order]
        start_s = schedule.start[f_order]
        same_voq = voq_s[1:] == voq_s[:-1]
        assert bool(np.all(start_s[1:][same_voq] > start_s[:-1][same_voq]))


def stream_schedule(stream_cls, rule, n, batches, windows):
    """Feed a run through a formation stream; concatenate the schedules."""
    stream = stream_cls(n, 1, rule)
    parts = []
    for batch in batches:
        parts.append(
            stream.feed(
                np.zeros(len(batch), dtype=np.int64),
                batch.slots,
                batch.inputs,
                batch.outputs,
                batch.end_slot if windows else None,
            )
        )
    if windows:
        parts.append(stream.finish())
    voq = np.concatenate([p.voq for p in parts])
    start = np.concatenate([p.start for p in parts])
    size = np.concatenate([p.size for p in parts])
    fakes = np.concatenate([p.fakes for p in parts])
    slot = np.concatenate([p.slot for p in parts])
    return type(parts[0])(voq, start, size, fakes, slot)


class TestMonolithicParity:
    """PF + FOFF x N x workload: whole-run schedules, drain included."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("n", [2, 8, 32])
    @pytest.mark.parametrize("kind", ["pf", "pf-thr2", "foff"])
    def test_engine_matches_reference(self, kind, n, workload):
        batch = WORKLOADS[workload](n, 7, SLOTS).draw(SLOTS)
        rule = rules_for(n)[kind]
        got = build_frame_schedule(batch, rule)
        want = reference_frame_schedule(batch, rule)
        assert_schedules_equal(got, want)

    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_pf_fake_cell_counts(self, n):
        """PF's padding accounting: every non-full frame carries exactly
        n - size fakes, full frames none — on both implementations."""
        batch = WORKLOADS["uniform"](n, 3, SLOTS).draw(SLOTS)
        rule = pf_rule(max(1, n // 2))
        for schedule in (
            build_frame_schedule(batch, rule),
            reference_frame_schedule(batch, rule),
        ):
            np.testing.assert_array_equal(
                schedule.fakes, n - schedule.size
            )

    def test_empty_batch(self):
        gen = BatchTrafficGenerator(
            uniform_matrix(4, 0.0), np.random.default_rng(0)
        )
        empty = gen.draw(50)
        assert len(empty) == 0
        for rule in (pf_rule(2), foff_rule()):
            assert len(build_frame_schedule(empty, rule)) == 0
            assert len(reference_frame_schedule(empty, rule)) == 0

    def test_drain_quiescence_forms_trailing_frames(self):
        """Backlog left at the arrival horizon must drain: FOFF forms
        frames past the last arrival slot until every VOQ is empty, and
        both implementations agree on those trailing cycles."""
        gen = WORKLOADS["incast"](8, 11, 300)
        batch = gen.draw(300)
        rule = foff_rule()
        got = build_frame_schedule(batch, rule)
        want = reference_frame_schedule(batch, rule)
        assert_schedules_equal(got, want)
        # FOFF sweeps every packet into a frame.
        assert int(got.size.sum()) == len(batch)
        # The drain really extends past the arrival horizon.
        assert int(got.slot.max()) >= int(batch.slots.max())


class TestStreamedParity:
    """Windowed formation (the resumable engine) vs both references."""

    @pytest.mark.parametrize("window", WINDOWS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("n", [2, 8, 32])
    @pytest.mark.parametrize("kind", ["pf", "foff"])
    def test_windowed_matches_monolithic(self, kind, n, workload, window):
        rule = rules_for(n)[kind]
        mono = build_frame_schedule(
            WORKLOADS[workload](n, 5, SLOTS).draw(SLOTS), rule
        )
        batches = list(
            WORKLOADS[workload](n, 5, SLOTS).draw_chunks(SLOTS, window)
        )
        streamed = stream_schedule(
            FrameFormationStream, rule, n, batches, windows=True
        )
        assert_schedules_equal(streamed, mono)

    @pytest.mark.parametrize("kind", ["pf", "foff"])
    def test_windowed_matches_scalar_reference_stream(self, kind):
        """The scalar reference stream, fed the same windows, must agree
        window for window (not just on the final union)."""
        n, window = 8, 113
        rule = rules_for(n)[kind]
        batches = list(
            WORKLOADS["mmpp-bursty"](n, 9, SLOTS).draw_chunks(SLOTS, window)
        )
        vec = FrameFormationStream(n, 1, rule)
        ref = ReferenceFormationStream(n, 1, rule)
        zeros = lambda b: np.zeros(len(b), dtype=np.int64)  # noqa: E731
        for batch in batches:
            got = vec.feed(
                zeros(batch), batch.slots, batch.inputs, batch.outputs,
                batch.end_slot,
            )
            want = ref.feed(
                zeros(batch), batch.slots, batch.inputs, batch.outputs,
                batch.end_slot,
            )
            assert_schedules_equal(got, want)
        assert_schedules_equal(vec.finish(), ref.finish())

    def test_tiny_windows(self):
        """Single-digit windows maximize carried-state churn."""
        n, rule = 4, foff_rule()
        mono = build_frame_schedule(
            WORKLOADS["uniform"](n, 2, 200).draw(200), rule
        )
        batches = list(
            WORKLOADS["uniform"](n, 2, 200).draw_chunks(200, 7)
        )
        streamed = stream_schedule(
            FrameFormationStream, rule, n, batches, windows=True
        )
        assert_schedules_equal(streamed, mono)


class TestRuleValidation:
    def test_unknown_rule_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown formation rule"):
            build_frame_schedule(
                BatchTrafficGenerator(
                    uniform_matrix(4, 0.5), np.random.default_rng(0)
                ).draw(10),
                FormationRule("warp", 0),
            )

    def test_rule_picker_round_trip(self):
        assert pf_rule(3).make_picker(8) is not None
        assert foff_rule().make_picker(8) is not None
        with pytest.raises(ValueError):
            FormationRule("warp").make_picker(8)
