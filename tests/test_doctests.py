"""Execute the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis.chernoff
import repro.analysis.delay_model
import repro.analysis.stability
import repro.core.dyadic
import repro.core.latin
import repro.core.lsf
import repro.core.permutation
import repro.core.striping
import repro.figures.render
import repro.sim.rng
import repro.switching.fabric
import repro.traffic.matrices

MODULES = [
    repro.analysis.chernoff,
    repro.analysis.delay_model,
    repro.analysis.stability,
    repro.core.dyadic,
    repro.core.latin,
    repro.core.lsf,
    repro.core.permutation,
    repro.core.striping,
    repro.figures.render,
    repro.sim.rng,
    repro.switching.fabric,
    repro.traffic.matrices,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctest examples"
    assert result.failed == 0
