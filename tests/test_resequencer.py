"""Unit tests for resequencing and reorder detection (switching/resequencer.py)."""

import pytest

from repro.switching.packet import Packet
from repro.switching.resequencer import ReorderingDetector, Resequencer


def make_packet(seq, i=0, j=0, fake=False):
    return Packet(input_port=i, output_port=j, arrival_slot=0, seq=seq, fake=fake)


class TestResequencer:
    def test_in_order_stream_passes_through(self):
        rs = Resequencer()
        for seq in range(5):
            released = rs.offer(make_packet(seq))
            assert [p.seq for p in released] == [seq]
        assert rs.pending() == 0

    def test_gap_buffers_until_filled(self):
        rs = Resequencer()
        assert rs.offer(make_packet(1)) == []
        assert rs.offer(make_packet(2)) == []
        assert rs.pending() == 2
        released = rs.offer(make_packet(0))
        assert [p.seq for p in released] == [0, 1, 2]
        assert rs.pending() == 0

    def test_flows_independent(self):
        rs = Resequencer()
        assert rs.offer(make_packet(1, i=0)) == []
        # A different VOQ's seq 0 releases immediately.
        assert [p.seq for p in rs.offer(make_packet(0, i=1))] == [0]

    def test_max_occupancy_tracked(self):
        rs = Resequencer()
        for seq in (3, 2, 1):
            rs.offer(make_packet(seq))
        assert rs.max_occupancy == 3
        rs.offer(make_packet(0))
        assert rs.max_occupancy == 3
        assert rs.pending() == 0

    def test_duplicate_rejected(self):
        rs = Resequencer()
        rs.offer(make_packet(0))
        with pytest.raises(ValueError):
            rs.offer(make_packet(0))

    def test_duplicate_buffered_rejected(self):
        rs = Resequencer()
        rs.offer(make_packet(2))
        with pytest.raises(ValueError):
            rs.offer(make_packet(2))


class TestReorderingDetector:
    def test_ordered_stream(self):
        det = ReorderingDetector()
        for seq in range(10):
            det.observe(make_packet(seq))
        assert det.is_ordered
        assert det.late_packets == 0

    def test_detects_late_packet(self):
        det = ReorderingDetector()
        det.observe(make_packet(0))
        det.observe(make_packet(2))
        det.observe(make_packet(1))
        assert not det.is_ordered
        assert det.late_packets == 1
        assert det.max_displacement == 1

    def test_displacement_magnitude(self):
        det = ReorderingDetector()
        det.observe(make_packet(10))
        det.observe(make_packet(3))
        assert det.max_displacement == 7

    def test_flows_tracked_separately(self):
        det = ReorderingDetector()
        det.observe(make_packet(5, i=0))
        det.observe(make_packet(0, i=1))  # different flow, not late
        assert det.is_ordered

    def test_fakes_ignored(self):
        det = ReorderingDetector()
        det.observe(make_packet(5))
        det.observe(make_packet(0, fake=True))
        assert det.is_ordered
        assert det.observed == 1
