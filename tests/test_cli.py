"""Tests for the command-line interface (cli.py)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["table1"],
            ["fig5"],
            ["fig6", "--n", "4"],
            ["fig7", "--slots", "100"],
            ["demo"],
            ["bounds", "--rho", "0.93", "--n", "1024"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "N=2048" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--n", "4", "--slots", "400", "--loads", "0.5"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_fig7_csv(self, capsys):
        assert main(
            ["fig7", "--n", "4", "--slots", "400", "--loads", "0.5", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("switch,load,")

    def test_demo(self, capsys):
        assert main(["demo", "--n", "4", "--load", "0.5", "--slots", "600"]) == 0
        out = capsys.readouterr().out
        assert "sprinklers" in out
        assert "output-queued" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--rho", "0.93", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "1.759e-09" in out

    def test_balance(self, capsys):
        assert main(
            ["balance", "--n", "16", "--trials", "10", "--loads", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "empirical_switch_wide" in out

    def test_validate(self, capsys):
        assert main(["validate", "--n", "4", "--slots", "1200"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_bursts_command_parses(self):
        args = build_parser().parse_args(["bursts", "--n", "8"])
        assert args.command == "bursts"


class TestScenarioCommands:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-uniform" in out
        assert "mmpp-bursty" in out
        assert "adversarial-stride" in out

    def test_scenarios_show(self, capsys):
        assert main(["scenarios", "show", "hotspot-4x"]) == 0
        out = capsys.readouterr().out
        assert '"family": "hotspot"' in out

    def test_scenarios_run_both_engines_agree(self, capsys):
        outputs = {}
        for engine in ("object", "vectorized"):
            assert main([
                "scenarios", "run", "--scenario", "load-ramp",
                "--switch", "sprinklers", "--n", "4", "--load", "0.6",
                "--slots", "500", "--engine", engine,
            ]) == 0
            out = capsys.readouterr().out
            outputs[engine] = out.split("\n", 1)[1]  # drop the header line
        assert "mean_delay" in outputs["object"]
        assert outputs["object"] == outputs["vectorized"]

    def test_scenarios_run_with_override_and_store(self, tmp_path, capsys):
        argv = [
            "scenarios", "run", "--scenario", "load-sine",
            "--set", "schedule.depth=0.2",
            "--switch", "ufs", "--n", "4", "--load", "0.5",
            "--slots", "400", "--engine", "vectorized",
            "--store", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0  # second run served from the store
        assert capsys.readouterr().out == first
        assert (tmp_path / "store" / "manifest.jsonl").exists()

    def test_no_store_wins(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
        assert main([
            "scenarios", "run", "--scenario", "paper-uniform",
            "--switch", "ufs", "--n", "4", "--load", "0.5",
            "--slots", "300", "--no-store",
        ]) == 0
        capsys.readouterr()
        assert not (tmp_path / "env-store").exists()

    def test_fig6_scenario_csv(self, capsys):
        assert main([
            "fig6", "--n", "4", "--slots", "400", "--loads", "0.5",
            "--scenario", "quasi-diagonal", "--engine", "vectorized",
            "--csv",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("switch,load,")
        assert "sprinklers" in out


class TestSwitchesCommands:
    def test_switches_list_all(self, capsys):
        assert main(["switches", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("sprinklers", "cms", "tcp-hashing", "pf", "foff"):
            assert name in out

    def test_switches_list_vectorized_covers_all_kernels(self, capsys):
        """The CI coverage gate: the vectorized engine must not silently
        lose a switch."""
        assert main(["switches", "list", "--engine", "vectorized"]) == 0
        out = capsys.readouterr().out
        for name in (
            "sprinklers", "ufs", "load-balanced", "output-queued",
            "pf", "foff",
        ):
            assert name in out, name
        assert "cms" not in out

    def test_switches_show(self, capsys):
        assert main(["switches", "show", "foff"]) == 0
        out = capsys.readouterr().out
        assert "exact-replay" in out
        assert "vectorized" in out

    def test_switches_show_alias(self, capsys):
        assert main(["switches", "show", "baseline-lb"]) == 0
        assert "load-balanced" in capsys.readouterr().out


class TestStoreCommands:
    def _populate(self, store_dir):
        argv = [
            "scenarios", "run", "--scenario", "paper-uniform",
            "--switch", "ufs", "--n", "4", "--load", "0.5",
            "--slots", "300", "--engine", "vectorized",
            "--store", store_dir,
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # second run hits the cache

    def test_stats_reports_entries_and_hit_rate(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "stats", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "entries      1" in out
        assert "hits         1" in out
        assert "hit rate     50.0%" in out

    def test_gc_by_age_empties_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        capsys.readouterr()
        assert main(["store", "gc", "--max-age-days", "0",
                     "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert main(["store", "stats", "--store", store_dir]) == 0
        assert "entries      0" in capsys.readouterr().out

    def test_missing_store_is_not_an_error(self, tmp_path, capsys):
        assert main(["store", "stats", "--store",
                     str(tmp_path / "nowhere")]) == 0
        assert "no experiment store" in capsys.readouterr().out
