"""Tests for the command-line interface (cli.py)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["table1"],
            ["fig5"],
            ["fig6", "--n", "4"],
            ["fig7", "--slots", "100"],
            ["demo"],
            ["bounds", "--rho", "0.93", "--n", "1024"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "N=2048" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--n", "4", "--slots", "400", "--loads", "0.5"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_fig7_csv(self, capsys):
        assert main(
            ["fig7", "--n", "4", "--slots", "400", "--loads", "0.5", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("switch,load,")

    def test_demo(self, capsys):
        assert main(["demo", "--n", "4", "--load", "0.5", "--slots", "600"]) == 0
        out = capsys.readouterr().out
        assert "sprinklers" in out
        assert "output-queued" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--rho", "0.93", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "1.759e-09" in out

    def test_balance(self, capsys):
        assert main(
            ["balance", "--n", "16", "--trials", "10", "--loads", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "empirical_switch_wide" in out

    def test_validate(self, capsys):
        assert main(["validate", "--n", "4", "--slots", "1200"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_bursts_command_parses(self):
        args = build_parser().parse_args(["bursts", "--n", "8"])
        assert args.command == "bursts"
