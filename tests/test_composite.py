"""Composite multi-stage fabrics: spec validation, chained replay,
streaming equivalence, per-stage metrics, and run-path dispatch."""

import numpy as np
import pytest

from repro import models
from repro.models import (
    CompositeSwitchModel,
    FabricSpec,
    available_fabrics,
    get_fabric,
    lookup_fabric,
    register_fabric,
    resolve_fabric,
)
from repro.models.composite import (
    interleave_stride,
    port_map,
    stage_matrices,
)
from repro.scenarios import resolve_scenario
from repro.sim.composite import run_fabric
from repro.sim.experiment import run_single
from repro.sim.fast_engine import run_single_fast
from repro.sim.replication import replicate
from repro.traffic.batch import BatchTrafficGenerator
from repro.traffic.matrices import uniform_matrix
from repro.sim.rng import derive_seed


def _single_stage_spec(switch="sprinklers"):
    return FabricSpec(
        name="solo-test", stages=({"switch": switch},)
    )


LEAF_SPINE = get_fabric("leaf-spine")


class TestPortMaps:
    def test_interleave_stride_is_coprime(self):
        for n in range(3, 40):
            s = interleave_stride(n)
            assert s >= 2 and np.gcd(s, n) == 1
        assert interleave_stride(1) == 1
        assert interleave_stride(2) == 1

    def test_every_kind_is_a_permutation(self):
        n = 12
        links = [
            {"kind": "identity"},
            {"kind": "interleave"},
            {"kind": "reverse"},
            {"kind": "rotate", "shift": 5},
            {"kind": "permutation", "ports": list(np.random.default_rng(0).permutation(n))},
        ]
        for link in links:
            mapped = port_map(link, n)
            assert sorted(mapped) == list(range(n))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown port-map kind"):
            port_map({"kind": "butterfly"}, 8)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown port-map fields"):
            port_map({"kind": "identity", "strde": 3}, 8)

    def test_permutation_requires_full_ports(self):
        with pytest.raises(ValueError, match="permutation of 0..7"):
            port_map({"kind": "permutation", "ports": [0, 1, 2]}, 8)
        with pytest.raises(ValueError, match="requires a 'ports' list"):
            port_map({"kind": "permutation"}, 8)

    def test_size_mismatch_raises_cleanly(self):
        # A fabric sized for n=4 fed an n=8 permutation map: the chain
        # refuses at construction rather than scattering out of bounds.
        spec = FabricSpec(
            name="mismatch-test",
            stages=({"switch": "sprinklers"}, {"switch": "output-queued"}),
            links=({"kind": "permutation", "ports": [1, 0, 3, 2, 5, 4, 7, 6]},),
        )
        with pytest.raises(ValueError, match="permutation of 0..3"):
            run_fabric(spec, uniform_matrix(4, 0.5), 200)


class TestFabricSpec:
    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="unknown switch"):
            FabricSpec(name="bad", stages=({"switch": "no-such-switch"},))

    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            FabricSpec(name="bad", stages=())

    def test_link_count_must_match(self):
        with pytest.raises(ValueError, match="need 1 links"):
            FabricSpec(
                name="bad",
                stages=({"switch": "sprinklers"}, {"switch": "sprinklers"}),
                links=(),
            )

    def test_unknown_stage_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FabricSpec(
                name="bad", stages=({"switch": "sprinklers", "kernel": 1},)
            )

    def test_links_default_to_identity(self):
        spec = FabricSpec(
            name="default-links",
            stages=({"switch": "sprinklers"}, {"switch": "output-queued"}),
        )
        assert spec.links == ({"kind": "identity"},)

    def test_round_trips_through_dict(self):
        spec = LEAF_SPINE
        again = FabricSpec.from_dict(spec.to_dict())
        assert again == spec
        assert hash(again) == hash(spec)

    def test_from_dict_rejects_unknown_fields(self):
        data = LEAF_SPINE.to_dict()
        data["topology"] = "clos"
        with pytest.raises(ValueError, match="unknown fabric spec fields"):
            FabricSpec.from_dict(data)

    def test_resolve_fabric_forms(self):
        assert resolve_fabric("leaf-spine") is LEAF_SPINE
        assert resolve_fabric(LEAF_SPINE) is LEAF_SPINE
        assert resolve_fabric(LEAF_SPINE.to_dict()) == LEAF_SPINE
        with pytest.raises(TypeError):
            resolve_fabric(42)

    def test_registry_collisions_refused(self):
        with pytest.raises(ValueError, match="collides with a registered switch"):
            register_fabric(
                FabricSpec(name="sprinklers", stages=({"switch": "pf"},))
            )
        with pytest.raises(ValueError, match="already registered"):
            register_fabric(
                FabricSpec(name="leaf-spine", stages=({"switch": "pf"},))
            )

    def test_builtins_registered(self):
        assert set(available_fabrics()) >= {"leaf-spine", "dual-sprinklers"}
        assert lookup_fabric("leaf-spine") is LEAF_SPINE
        assert lookup_fabric("sprinklers") is None
        assert lookup_fabric(None) is None


class TestCompositeModel:
    def test_capabilities_intersect(self):
        composite = CompositeSwitchModel(LEAF_SPINE)
        for model in composite.models:
            assert composite.capabilities <= model.capabilities
        assert models.Capability.COMPOSABLE in composite.capabilities

    def test_vectorized_requires_composable_stages(self):
        spec = FabricSpec(
            name="cms-tail-test",
            stages=({"switch": "sprinklers"}, {"switch": "cms"}),
        )
        composite = CompositeSwitchModel(spec)
        assert composite.supports_engine("object")
        assert not composite.supports_engine("vectorized")
        with pytest.raises(ValueError, match="not composable"):
            composite.require_engine("vectorized")
        with pytest.raises(ValueError, match="not composable"):
            run_fabric(spec, uniform_matrix(4, 0.4), 100, engine="vectorized")

    def test_stage_matrices_preserve_columns(self):
        matrix = uniform_matrix(8, 0.7)
        mats = stage_matrices(matrix, LEAF_SPINE)
        assert len(mats) == 2
        # Destination-preserving routing keeps every column's aggregate.
        np.testing.assert_allclose(mats[1].sum(axis=0), matrix.sum(axis=0))
        # Each downstream input carries exactly one upstream output.
        assert (np.count_nonzero(mats[1], axis=1) <= 1).all()
        # Admissible whenever the source matrix is.
        assert mats[1].sum(axis=1).max() <= matrix.sum(axis=1).max() + 1e-12


class TestChainedReplay:
    def test_single_stage_identity_matches_run_single_fast(self):
        # Stage 0 keeps the run seed, so a one-stage fabric IS the
        # plain vectorized run, bit for bit.
        matrix = uniform_matrix(8, 0.8)
        plain = run_single_fast("sprinklers", matrix, 3000, seed=5)
        fabric = run_fabric(_single_stage_spec(), matrix, 3000, seed=5)
        np.testing.assert_array_equal(
            plain._delay_samples, fabric._delay_samples
        )
        assert plain.mean_delay == fabric.mean_delay
        assert plain.late_packets == fabric.late_packets

    @pytest.mark.parametrize("scenario", [
        "paper-uniform", "ring-allreduce", "incast-fanin",
    ])
    @pytest.mark.parametrize("fabric", ["leaf-spine", "dual-sprinklers"])
    def test_streamed_matches_monolithic(self, scenario, fabric):
        kwargs = dict(
            scenario=scenario, n=8, load=0.7, num_slots=1500, seed=3,
            engine="vectorized",
        )
        mono = run_single(fabric, **kwargs)
        streamed = run_single(fabric, window_slots=128, **kwargs)
        ragged = run_single(fabric, window_slots=333, **kwargs)
        assert mono.to_dict() == streamed.to_dict() == ragged.to_dict()

    @pytest.mark.parametrize("scenario", ["paper-uniform", "ring-allreduce"])
    def test_object_engine_parity(self, scenario):
        kwargs = dict(
            scenario=scenario, n=8, load=0.6, num_slots=1200, seed=2,
        )
        vec = run_single("leaf-spine", engine="vectorized", **kwargs)
        obj = run_single("leaf-spine", engine="object", **kwargs)
        assert vec.to_dict() == obj.to_dict()

    def test_stage_means_sum_to_e2e(self):
        result = run_single(
            "leaf-spine", uniform_matrix(8, 0.8), 2500, seed=1,
            engine="vectorized",
        )
        total = sum(
            result.extras[f"stage{k}_mean_delay"]
            for k in range(int(result.extras["stages"]))
        )
        assert total == pytest.approx(result.mean_delay, abs=1e-9)
        assert result.extras["stage0_measured"] == result.measured_packets

    def test_zero_arrival_windows_propagate(self):
        # A silent fabric: every window is empty end to end, and the
        # chain neither crashes nor invents packets.
        matrix = np.zeros((4, 4))
        result = run_fabric(
            LEAF_SPINE, matrix, 600, seed=0, window_slots=100
        )
        assert result.injected == 0
        assert result.departed == 0
        assert np.isnan(result.mean_delay)
        assert result.extras["stage0_observed"] == 0.0

    def test_drain_matches_single_switch_cut(self):
        # A single-stage fabric finalizes exactly the packets the plain
        # run does: same drain cut, same departed count.
        matrix = uniform_matrix(8, 0.9)
        plain = run_single_fast("foff", matrix, 1500, seed=4)
        fabric = run_fabric(
            _single_stage_spec("foff"), matrix, 1500, seed=4
        )
        assert fabric.departed == plain.departed
        assert fabric.injected == plain.injected
        np.testing.assert_array_equal(
            plain._delay_samples, fabric._delay_samples
        )

    def test_ordered_through_the_chain(self):
        # Both shipped fabrics keep end-to-end order under uniform load.
        for name in ("leaf-spine", "dual-sprinklers"):
            result = run_single(
                name, uniform_matrix(8, 0.8), 2000, seed=7,
                engine="vectorized",
            )
            assert result.late_packets == 0
            assert result.extras["stage1_late_packets"] == 0.0

    def test_mismatched_traffic_size_raises(self):
        traffic = BatchTrafficGenerator(
            uniform_matrix(4, 0.5),
            np.random.default_rng(derive_seed(0, "traffic")),
        )
        with pytest.raises(ValueError, match="does not match matrix"):
            run_fabric(
                LEAF_SPINE, uniform_matrix(8, 0.5), 500,
                batch_traffic=traffic,
            )


class TestRunPathDispatch:
    def test_run_single_rejects_switch_params(self):
        with pytest.raises(ValueError, match="belong in the FabricSpec"):
            run_single(
                "leaf-spine", uniform_matrix(4, 0.5), 300,
                switch_params={"speedup": 2},
            )

    def test_store_round_trip(self, tmp_path):
        kwargs = dict(
            scenario="paper-uniform", n=8, load=0.6, num_slots=800,
            seed=0, engine="vectorized", store=str(tmp_path),
        )
        first = run_single("leaf-spine", window_slots=100, **kwargs)
        # The cache key omits window_slots (identical results), so the
        # monolithic re-run must hit the windowed run's entry.
        second = run_single("leaf-spine", **kwargs)
        assert first.to_dict() == second.to_dict()
        assert second.extras["stage1_mean_delay"] == (
            first.extras["stage1_mean_delay"]
        )

    def test_fabric_and_switch_keys_disjoint(self, tmp_path):
        # A one-stage fabric produces the same numbers as the plain
        # switch but must NOT share its cache entry (kind differs).
        spec = _single_stage_spec()
        matrix = uniform_matrix(8, 0.7)
        a = run_single(
            "sprinklers", matrix, 600, engine="vectorized",
            store=str(tmp_path),
        )
        b = run_single(
            spec, matrix, 600, engine="vectorized", store=str(tmp_path),
        )
        assert a.mean_delay == b.mean_delay
        assert a.switch_name == "sprinklers"
        assert b.switch_name == "solo-test"

    def test_replicate_dispatches_fabrics(self):
        rep = replicate(
            "leaf-spine",
            scenario="paper-uniform",
            n=8,
            load=0.6,
            num_slots=600,
            replications=3,
            engine="vectorized",
        )
        assert len(rep.values) == 3
        assert all(np.isfinite(v) for v in rep.values)

    def test_sweep_dispatches_fabrics(self):
        from repro.figures.delay_figures import generate

        rows = generate(
            "uniform", n=8, loads=(0.5,), num_slots=500,
            switches=("sprinklers", "leaf-spine"), engine="vectorized",
        )
        names = {row["switch"] for row in rows}
        assert names == {"sprinklers", "leaf-spine"}
