"""Tests for the figure/table generators (figures/)."""

import math

from repro.figures import fig5, fig6, fig7, table1
from repro.figures.render import ascii_log_chart, format_table, rows_to_csv


class TestRender:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.001}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_csv(self):
        csv = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert csv.splitlines() == ["a,b", "1,2", "3,4"]

    def test_chart_renders_all_series(self):
        chart = ascii_log_chart(
            {"one": [(0.1, 10), (0.5, 100)], "two": [(0.1, 20), (0.5, 50)]}
        )
        assert "o = one" in chart
        assert "x = two" in chart
        assert "10^" in chart

    def test_chart_skips_nonpositive(self):
        chart = ascii_log_chart({"s": [(0.1, 0.0), (0.2, float("nan")), (0.3, 5)]})
        assert "10^" in chart

    def test_chart_empty(self):
        assert ascii_log_chart({"s": []}) == "(no data)"


class TestTable1:
    def test_generate_shape(self):
        rows = table1.generate(rhos=(0.93,), ns=(1024,))
        assert rows == [{"rho": 0.93, "N=1024": rows[0]["N=1024"]}]
        assert 0 < rows[0]["N=1024"] < 1e-6

    def test_with_paper_columns(self):
        rows = table1.generate_with_paper(rhos=(0.95,), ns=(2048,))
        assert "paper N=2048" in rows[0]

    def test_render_contains_values(self):
        text = table1.render()
        assert "Table 1" in text
        assert "0.93" in text


class TestFig5:
    def test_generate(self):
        rows = fig5.generate(ns=(10, 100), rho=0.9)
        assert rows[0]["delay_periods"] < rows[1]["delay_periods"]

    def test_render(self):
        text = fig5.render(ns=(10, 100, 1000))
        assert "Figure 5" in text
        assert "4495.5" in text


class TestDelayFigures:
    def test_fig6_mini(self):
        rows = fig6.generate(n=4, loads=(0.4,), num_slots=600, seed=1)
        assert len(rows) == 5  # five paper switches
        by_switch = {row["switch"]: row for row in rows}
        assert by_switch["sprinklers"]["late_packets"] == 0
        assert by_switch["ufs"]["late_packets"] == 0
        assert not math.isnan(by_switch["sprinklers"]["mean_delay"])

    def test_fig7_mini(self):
        rows = fig7.generate(n=4, loads=(0.5,), num_slots=600, seed=1)
        assert {row["switch"] for row in rows} == {
            "baseline-lb", "ufs", "foff", "pf", "sprinklers",
        }

    def test_fig6_render_has_chart(self):
        text = fig6.render(n=4, loads=(0.4, 0.8), num_slots=500, seed=0)
        assert "Figure 6" in text
        assert "10^" in text


class TestRenderedTableMemoization:
    """The figure layer memoizes whole rendered tables through the
    experiment store: same figure spec + same constituent run keys =>
    the second render is one artifact fetch, zero sweep work."""

    KW = dict(n=4, loads=(0.4, 0.7), num_slots=400, seed=2,
              engine="vectorized")

    def _render_counting_sweeps(self, monkeypatch, store):
        from repro.figures import delay_figures

        calls = {"sweeps": 0}
        real = delay_figures.delay_vs_load_sweep

        def counting(*args, **kwargs):
            calls["sweeps"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            delay_figures, "delay_vs_load_sweep", counting
        )
        text = fig6.render(store=store, **self.KW)
        return text, calls["sweeps"]

    def test_second_render_skips_the_sweep(self, tmp_path, monkeypatch):
        store = str(tmp_path / "store")
        first, sweeps1 = self._render_counting_sweeps(monkeypatch, store)
        assert sweeps1 == 1
        second, sweeps2 = self._render_counting_sweeps(monkeypatch, store)
        assert sweeps2 == 0  # whole-table artifact hit
        assert second == first

    def test_no_store_disables_memoization(self, monkeypatch):
        first, sweeps1 = self._render_counting_sweeps(monkeypatch, None)
        second, sweeps2 = self._render_counting_sweeps(monkeypatch, None)
        assert sweeps1 == sweeps2 == 1
        assert second == first

    def test_key_tracks_figure_spec(self, tmp_path):
        """Different slots/figure => different artifact (no false hits),
        and scenario-overridden figures key on the scenario spec."""
        from repro.figures.delay_figures import table_params
        from repro.store import cache_key

        base = table_params(
            "uniform", "Figure 6", 4, (0.4,), 400,
            ("sprinklers",), 2, "vectorized",
        )
        longer = table_params(
            "uniform", "Figure 6", 4, (0.4,), 800,
            ("sprinklers",), 2, "vectorized",
        )
        scenario = table_params(
            "mmpp-bursty", "Figure 6 [mmpp-bursty]", 4, (0.4,), 400,
            ("sprinklers",), 2, "vectorized",
        )
        keys = {cache_key(p) for p in (base, longer, scenario)}
        assert len(keys) == 3
        assert scenario["pattern"]["name"] == "mmpp-bursty"
        # The constituent run keys are part of the content address.
        assert base["runs"] and base["runs"] != longer["runs"]

    def test_artifact_coexists_with_run_objects(self, tmp_path):
        """Rendered tables and per-cell results share one store; stats
        counts both, and a run fetch never returns an artifact."""
        from repro.models import PAPER_SWITCHES
        from repro.store import ExperimentStore

        store_dir = str(tmp_path / "store")
        fig6.render(store=store_dir, **self.KW)
        store = ExperimentStore(store_dir)
        stats = store.stats()
        # One cell per (switch, load), plus the rendered table.
        assert stats.entries == len(PAPER_SWITCHES) * len(self.KW["loads"]) + 1
        assert store.fetch_artifact({"kind": "nope"}) is None
