"""Tests for the figure/table generators (figures/)."""

import math

from repro.figures import fig5, fig6, fig7, table1
from repro.figures.render import ascii_log_chart, format_table, rows_to_csv


class TestRender:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.001}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_csv(self):
        csv = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert csv.splitlines() == ["a,b", "1,2", "3,4"]

    def test_chart_renders_all_series(self):
        chart = ascii_log_chart(
            {"one": [(0.1, 10), (0.5, 100)], "two": [(0.1, 20), (0.5, 50)]}
        )
        assert "o = one" in chart
        assert "x = two" in chart
        assert "10^" in chart

    def test_chart_skips_nonpositive(self):
        chart = ascii_log_chart({"s": [(0.1, 0.0), (0.2, float("nan")), (0.3, 5)]})
        assert "10^" in chart

    def test_chart_empty(self):
        assert ascii_log_chart({"s": []}) == "(no data)"


class TestTable1:
    def test_generate_shape(self):
        rows = table1.generate(rhos=(0.93,), ns=(1024,))
        assert rows == [{"rho": 0.93, "N=1024": rows[0]["N=1024"]}]
        assert 0 < rows[0]["N=1024"] < 1e-6

    def test_with_paper_columns(self):
        rows = table1.generate_with_paper(rhos=(0.95,), ns=(2048,))
        assert "paper N=2048" in rows[0]

    def test_render_contains_values(self):
        text = table1.render()
        assert "Table 1" in text
        assert "0.93" in text


class TestFig5:
    def test_generate(self):
        rows = fig5.generate(ns=(10, 100), rho=0.9)
        assert rows[0]["delay_periods"] < rows[1]["delay_periods"]

    def test_render(self):
        text = fig5.render(ns=(10, 100, 1000))
        assert "Figure 5" in text
        assert "4495.5" in text


class TestDelayFigures:
    def test_fig6_mini(self):
        rows = fig6.generate(n=4, loads=(0.4,), num_slots=600, seed=1)
        assert len(rows) == 5  # five paper switches
        by_switch = {row["switch"]: row for row in rows}
        assert by_switch["sprinklers"]["late_packets"] == 0
        assert by_switch["ufs"]["late_packets"] == 0
        assert not math.isnan(by_switch["sprinklers"]["mean_delay"])

    def test_fig7_mini(self):
        rows = fig7.generate(n=4, loads=(0.5,), num_slots=600, seed=1)
        assert {row["switch"] for row in rows} == {
            "baseline-lb", "ufs", "foff", "pf", "sprinklers",
        }

    def test_fig6_render_has_chart(self):
        text = fig6.render(n=4, loads=(0.4, 0.8), num_slots=500, seed=0)
        assert "Figure 6" in text
        assert "10^" in text
