"""Unit tests for dyadic interval algebra (core/dyadic.py)."""

import pytest

from repro.core.dyadic import (
    DyadicInterval,
    all_dyadic_intervals,
    dyadic_interval_for,
    is_power_of_two,
    log2_int,
)


class TestPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(2**k) for k in range(12))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in (0, -1, -4, 3, 5, 6, 7, 12))

    def test_log2_int_exact(self):
        for k in range(10):
            assert log2_int(2**k) == k

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(6)


class TestDyadicIntervalConstruction:
    def test_basic(self):
        iv = DyadicInterval(4, 4)
        assert iv.start == 4
        assert iv.end == 8
        assert iv.size == 4
        assert iv.level == 2

    def test_rejects_misaligned_start(self):
        with pytest.raises(ValueError):
            DyadicInterval(2, 4)

    def test_rejects_non_power_size(self):
        with pytest.raises(ValueError):
            DyadicInterval(0, 3)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            DyadicInterval(-4, 4)

    def test_unit_interval(self):
        iv = DyadicInterval(5, 1)
        assert list(iv.ports()) == [5]
        assert iv.level == 0

    def test_paper_notation(self):
        assert DyadicInterval(8, 4).as_paper_notation() == "(8, 12]"


class TestMembership:
    def test_contains_port(self):
        iv = DyadicInterval(4, 4)
        assert not iv.contains_port(3)
        assert iv.contains_port(4)
        assert iv.contains_port(7)
        assert not iv.contains_port(8)

    def test_strictly_inside_excludes_start(self):
        iv = DyadicInterval(4, 4)
        assert not iv.strictly_inside(4)
        assert iv.strictly_inside(5)
        assert iv.strictly_inside(7)
        assert not iv.strictly_inside(8)

    def test_dunder_contains_and_iter(self):
        iv = DyadicInterval(2, 2)
        assert 3 in iv
        assert list(iv) == [2, 3]
        assert len(iv) == 2


class TestLaminarRelations:
    def test_parent(self):
        assert DyadicInterval(4, 4).parent() == DyadicInterval(0, 8)
        assert DyadicInterval(6, 2).parent() == DyadicInterval(4, 4)

    def test_children(self):
        left, right = DyadicInterval(0, 8).children()
        assert left == DyadicInterval(0, 4)
        assert right == DyadicInterval(4, 4)

    def test_unit_has_no_children(self):
        with pytest.raises(ValueError):
            DyadicInterval(3, 1).children()

    def test_contains_nested(self):
        assert DyadicInterval(0, 8).contains(DyadicInterval(4, 2))
        assert not DyadicInterval(4, 2).contains(DyadicInterval(0, 8))

    def test_overlap_is_laminar(self):
        # Any two dyadic intervals either nest or are disjoint ("bear hug
        # or don't touch", paper section 3.1).
        intervals = all_dyadic_intervals(16)
        for a in intervals:
            for b in intervals:
                if a.overlaps(b):
                    assert a.contains(b) or b.contains(a)

    def test_ancestors_within(self):
        chain = list(DyadicInterval(6, 2).ancestors_within(8))
        assert chain == [
            DyadicInterval(6, 2),
            DyadicInterval(4, 4),
            DyadicInterval(0, 8),
        ]

    def test_equality_and_hash(self):
        assert DyadicInterval(0, 4) == DyadicInterval(0, 4)
        assert DyadicInterval(0, 4) != DyadicInterval(0, 8)
        assert len({DyadicInterval(0, 4), DyadicInterval(0, 4)}) == 1

    def test_ordering(self):
        assert DyadicInterval(0, 2) < DyadicInterval(0, 4)
        assert DyadicInterval(0, 4) < DyadicInterval(4, 4)


class TestIntervalFor:
    def test_unique_covering_interval(self):
        # The size-4 dyadic interval containing port 5 in [0, 8).
        assert dyadic_interval_for(5, 4, 8) == DyadicInterval(4, 4)
        assert dyadic_interval_for(5, 8, 8) == DyadicInterval(0, 8)
        assert dyadic_interval_for(5, 1, 8) == DyadicInterval(5, 1)

    def test_every_port_and_size(self):
        n = 16
        for port in range(n):
            for k in range(5):
                size = 2**k
                iv = dyadic_interval_for(port, size, n)
                assert iv.contains_port(port)
                assert iv.size == size
                assert iv.start % size == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            dyadic_interval_for(0, 4, 12)  # n not a power of two
        with pytest.raises(ValueError):
            dyadic_interval_for(0, 3, 8)  # size not a power of two
        with pytest.raises(ValueError):
            dyadic_interval_for(0, 16, 8)  # size > n
        with pytest.raises(ValueError):
            dyadic_interval_for(8, 2, 8)  # port out of range


class TestAllDyadicIntervals:
    def test_count_is_2n_minus_1(self):
        # The paper's observation behind the 2N-1 FIFO collapse.
        for n in (1, 2, 4, 8, 16, 32):
            assert len(all_dyadic_intervals(n)) == 2 * n - 1

    def test_unique(self):
        intervals = all_dyadic_intervals(32)
        assert len(set(intervals)) == len(intervals)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            all_dyadic_intervals(12)
