"""Tests for the ``repro.lint`` static analyzer.

Each rule family gets a pair of fixtures: one that must fire and one
that must stay silent.  Fixtures are written under ``tmp_path/src/repro``
so module names resolve exactly as they do for the real tree (the rules
key several behaviors off the module path: RNG exemptions, RNG004
parity-critical prefixes, the KEY call-graph roots).

The meta-test at the bottom lints the real ``src/repro`` tree and
asserts it is clean — the analyzer gates CI, so the repo must pass its
own linter.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    format_findings,
    lint_paths,
    resolve_selection,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_lint(tmp_path, files, select=None, ignore=None):
    """Write *files* (relpath → source) under tmp_path and lint them."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], root=tmp_path, select=select, ignore=ignore)


def codes(result):
    return [f.code for f in result.findings]


# -- RNG family ----------------------------------------------------------------


def test_rng001_global_numpy_state_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import numpy as np

            def draw(n):
                return np.random.normal(size=n)
        """,
    })
    assert codes(result) == ["RNG001"]
    assert "process-global" in result.findings[0].message


def test_rng002_stdlib_random_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import random

            def pick(xs):
                return random.choice(xs)
        """,
    })
    assert "RNG002" in codes(result)


def test_rng003_raw_seed_fires(tmp_path):
    # Reproduces the pre-fix violation from repro/analysis/balance.py,
    # where trial matrices were drawn from default_rng(seed) without
    # deriving a named child seed first.
    result = run_lint(tmp_path, {
        "src/repro/analysis/balance.py": """
            import numpy as np

            def trial(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """,
    })
    assert codes(result) == ["RNG003"]


def test_rng003_derived_seed_is_clean(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/balance.py": """
            import numpy as np

            from repro.sim.rng import derive_seed

            def trial(seed):
                child = derive_seed(seed, "trial")
                a = np.random.default_rng(child)
                b = np.random.default_rng(derive_seed(seed, "other"))
                return a.random() + b.random()
        """,
    })
    assert result.ok, codes(result)


def test_rng004_conditional_draw_in_parity_module(tmp_path):
    source = """
        def step(rng, burst):
            if burst:
                x = rng.random()
            else:
                x = 0.0
            return x
    """
    # Fires inside a parity-critical module...
    hot = run_lint(tmp_path / "hot", {"src/repro/traffic/onoff.py": source})
    assert codes(hot) == ["RNG004"]
    # ...and is silent for the same code elsewhere.
    cold = run_lint(tmp_path / "cold", {"src/repro/analysis/onoff.py": source})
    assert cold.ok


def test_rng_rules_exempt_the_rng_module_itself(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/rng.py": """
            import numpy as np

            def spawn(seed):
                return np.random.default_rng(seed)
        """,
    })
    assert result.ok


# -- LOCK family ---------------------------------------------------------------

_LOCKED_CLASS = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {{}}  # guarded by: self._lock{mode}

        def get(self, k):
            {get_body}

        def put(self, k, v):
            {put_body}
"""


def _lock_fixture(tmp_path, get_body, put_body, mode=""):
    source = textwrap.dedent(_LOCKED_CLASS).format(
        get_body=get_body, put_body=put_body, mode=mode
    )
    return run_lint(
        tmp_path, {"src/repro/service/box.py": source}, select=["LOCK"]
    )


def test_lock001_unguarded_access_fires(tmp_path):
    result = _lock_fixture(
        tmp_path,
        get_body="return self._items.get(k)",
        put_body="self._items[k] = v",
    )
    assert codes(result) == ["LOCK001", "LOCK001"]
    assert "unguarded" in result.findings[0].message


def test_lock001_with_lock_is_clean(tmp_path):
    result = _lock_fixture(
        tmp_path,
        get_body="""with self._lock:
                return self._items.get(k)""",
        put_body="""with self._lock:
                self._items[k] = v""",
    )
    assert result.ok, codes(result)


def test_lock001_requires_annotation_is_clean(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/service/box.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}  # guarded by: self._lock

                def _get_locked(self, k):  # requires: self._lock
                    return self._items.get(k)
        """,
    }, select=["LOCK"])
    assert result.ok, codes(result)


def test_lock001_writes_mode_allows_lockfree_reads(tmp_path):
    # The double-checked idiom: reads race the lock deliberately,
    # rebinding the attribute still must hold it.
    read_ok = _lock_fixture(
        tmp_path / "ok",
        get_body="return self._items.get(k)",
        put_body="""with self._lock:
                self._items = dict(self._items, **{k: v})""",
        mode=" [writes]",
    )
    assert read_ok.ok, codes(read_ok)
    write_bad = _lock_fixture(
        tmp_path / "bad",
        get_body="return self._items.get(k)",
        put_body="self._items = dict(self._items, **{k: v})",
        mode=" [writes]",
    )
    assert codes(write_bad) == ["LOCK001"]
    assert "write to" in write_bad.findings[0].message


def test_lock002_misplaced_annotation_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/service/box.py": """
            class Box:
                def tick(self):
                    x = 1  # guarded by: self._lock
                    return x
        """,
    }, select=["LOCK"])
    assert codes(result) == ["LOCK002"]


# -- KEY family ----------------------------------------------------------------


def test_key001_wall_clock_reachable_from_key_root(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/experiment.py": """
            import time

            def _stamp():
                return time.time()

            def resolve_run_params(params):
                return dict(params, at=_stamp())

            def unrelated():
                return time.time_ns()
        """,
    }, select=["KEY"])
    # The helper is reachable from the root; ``unrelated`` is not.
    assert codes(result) == ["KEY001"]
    assert "_stamp" in result.findings[0].message


def test_key002_unsorted_listing_fires_and_sorted_is_clean(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/store/store.py": """
            import os

            def cache_key(root):
                names = os.listdir(root)
                stable = sorted(os.listdir(root))
                return names, stable
        """,
    }, select=["KEY"])
    assert codes(result) == ["KEY002"]
    assert result.findings[0].line == 5


def test_key003_set_iteration_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/store/store.py": """
            def canonical_params(params):
                return [k for k in set(params)]
        """,
    }, select=["KEY"])
    assert codes(result) == ["KEY003"]


def test_key_rules_ignore_functions_off_the_key_path(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/timing.py": """
            import time

            def elapsed(t0):
                return time.time() - t0
        """,
    }, select=["KEY"])
    assert result.ok


# -- TEL family ----------------------------------------------------------------


def test_tel001_uncontextmanaged_span_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/run.py": """
            from repro import telemetry

            def go():
                telemetry.trace("run.step")
        """,
    }, select=["TEL"])
    assert codes(result) == ["TEL001"]


def test_tel001_with_and_assign_then_with_are_clean(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/run.py": """
            from repro import telemetry

            def go():
                with telemetry.trace("run.step"):
                    pass

            def deferred():
                span = telemetry.trace("sweep.point")
                with span:
                    pass
        """,
    }, select=["TEL"])
    assert result.ok, codes(result)


def test_tel002_offvocabulary_span_name_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/run.py": """
            from repro import telemetry

            def go():
                with telemetry.trace("Run Step"):
                    pass
        """,
    }, select=["TEL"])
    assert codes(result) == ["TEL002"]


def test_tel003_instrument_in_function_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/sim/run.py": """
            from repro import telemetry

            _HITS = telemetry.counter("store.hits")

            def go():
                misses = telemetry.counter("store.misses")
                misses.add()
        """,
    }, select=["TEL"])
    # Module-scope creation is the idiom; in-function creation fires.
    assert codes(result) == ["TEL003"]
    assert result.findings[0].line == 7


# -- REG family (static __all__ check) -----------------------------------------


def test_reg004_all_mismatches_fire(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/api.py": """
            __all__ = ["present", "phantom"]

            def present():
                return 1

            def orphan():
                return 2
        """,
    }, select=["REG004"])
    messages = sorted(f.message for f in result.findings)
    assert codes(result) == ["REG004", "REG004"]
    assert "'phantom'" in messages[0]
    assert "'orphan'" in messages[1]


def test_reg004_lazy_getattr_module_skips_undefined_names(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/api.py": """
            __all__ = ["lazy_thing"]

            def __getattr__(name):
                raise AttributeError(name)
        """,
    }, select=["REG004"])
    assert result.ok, codes(result)


# -- Suppressions --------------------------------------------------------------


def test_inline_suppression_silences_and_counts(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import numpy as np

            def trial(seed):
                rng = np.random.default_rng(seed)  # repro: lint-ignore[RNG003] -- test fixture
                return rng.random()
        """,
    })
    assert result.ok
    assert result.suppressed == 1


def test_standalone_suppression_applies_to_next_line(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import numpy as np

            def trial(seed):
                # repro: lint-ignore[RNG003]
                rng = np.random.default_rng(seed)
                return rng.random()
        """,
    })
    assert result.ok
    assert result.suppressed == 1


def test_family_prefix_suppression(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import numpy as np

            def trial(seed):
                rng = np.random.default_rng(seed)  # repro: lint-ignore[RNG]
                return rng.random()
        """,
    })
    assert result.ok
    assert result.suppressed == 1


def test_sup001_unused_suppression_fires(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            def clean():  # repro: lint-ignore[RNG003]
                return 0
        """,
    })
    assert codes(result) == ["SUP001"]
    assert "unused" in result.findings[0].message


def test_suppression_does_not_hide_other_codes(tmp_path):
    result = run_lint(tmp_path, {
        "src/repro/analysis/mc.py": """
            import random  # repro: lint-ignore[RNG003]
        """,
    })
    # RNG002 survives, and the RNG003 directive is reported unused.
    assert sorted(codes(result)) == ["RNG002", "SUP001"]


# -- Selection and reporting ---------------------------------------------------


def test_resolve_selection_expands_families_and_rejects_unknown():
    lock_only = resolve_selection(["LOCK"], None)
    assert lock_only == {"LOCK001", "LOCK002"}
    assert "RNG003" in resolve_selection(None, ["LOCK"])
    with pytest.raises(ValueError):
        resolve_selection(["BOGUS"], None)


def test_select_limits_findings_to_family(tmp_path):
    files = {
        "src/repro/analysis/mc.py": """
            import random
            import numpy as np

            def trial(seed):
                return np.random.default_rng(seed)
        """,
    }
    everything = run_lint(tmp_path, dict(files))
    assert sorted(codes(everything)) == ["RNG002", "RNG003"]
    only_rng002 = run_lint(tmp_path, dict(files), select=["RNG002"])
    assert codes(only_rng002) == ["RNG002"]


def test_format_findings_text_json_github():
    finding = Finding(
        code="RNG003",
        message="raw seed",
        path="src/repro/x.py",
        line=4,
        col=8,
    )
    assert format_findings([finding], "text") == "src/repro/x.py:4:8 RNG003 raw seed"
    [obj] = json.loads(format_findings([finding], "json"))
    assert obj["code"] == "RNG003" and obj["line"] == 4
    gh = format_findings([finding], "github")
    assert gh.startswith("::error file=src/repro/x.py,line=4,")
    assert "title=RNG003" in gh


# -- The repo passes its own linter --------------------------------------------


def test_repo_tree_is_lint_clean():
    result = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    assert result.ok, "\n" + "\n".join(
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.findings
    )
    assert result.checked > 90


def test_cli_lint_subcommand(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    bad = tmp_path / "src" / "repro" / "analysis" / "mc.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\n"
        "def t(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "src"]) == 1
    out = capsys.readouterr().out
    assert "RNG003" in out
    assert main(["lint", "src", "--ignore", "RNG003"]) == 0
    assert main(["lint", "--list-rules"]) == 0
    assert "LOCK001" in capsys.readouterr().out
    assert main(["lint", "src", "--select", "NOPE"]) == 2
