"""Engine equivalence: the vectorized batch engine vs the object oracle.

The fast engine claims to reproduce the object engine's dynamics *exactly*
(not within tolerance) for the switches it models, because both consume
the same seeded arrival stream and the vectorized recursions replay the
same deterministic service disciplines.  These tests pin that claim
field-for-field — mean delay, percentiles, throughput counters, ordering
diagnostics and the delay decomposition — across switches, traffic
patterns and loads, and keep the object engine in its role as the
ordering-audit oracle.

Which switches are vectorized is a property of the switch-model registry
(`repro.models`): every model carrying a kernel must pass the parity
bar, so registering a new kernel automatically enrolls it here.  PF and
FOFF get a dedicated acceptance grid (N ∈ {2, 8, 32} across scenarios)
because their frame-at-a-time input side and (for FOFF) resequencer
replay are the newest and subtlest kernels.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import models
from repro.sim.experiment import ENGINES, run_single
from repro.sim.fast_engine import run_single_fast
from repro.sim.parallel import SweepJob, run_jobs
from repro.traffic.matrices import diagonal_matrix, uniform_matrix

FAST_SWITCHES = list(models.available(engine="vectorized"))
PATTERNS = {"uniform": uniform_matrix, "diagonal": diagonal_matrix}


def _assert_results_identical(a, b):
    """Every reported quantity must match exactly (same seeds, same math)."""
    assert a.switch_name == b.switch_name
    assert a.n == b.n
    assert a.slots == b.slots
    assert a.warmup == b.warmup
    assert a.injected == b.injected
    assert a.departed == b.departed
    assert a.measured_packets == b.measured_packets
    assert a.late_packets == b.late_packets
    assert a.max_displacement == b.max_displacement
    for field in ("mean_delay", "p50_delay", "p99_delay"):
        x, y = getattr(a, field), getattr(b, field)
        assert x == y or (math.isnan(x) and math.isnan(y)), field
    assert a.max_delay == b.max_delay
    assert a.throughput == b.throughput or (
        math.isnan(a.throughput) and math.isnan(b.throughput)
    )
    assert a.extras == b.extras


class TestRegistryCoverage:
    def test_vectorized_coverage_includes_paper_switches(self):
        """The ISSUE-3 acceptance bar: every Fig. 6/7 switch plus the OQ
        reference runs on the vectorized engine."""
        assert set(FAST_SWITCHES) >= {
            "sprinklers", "ufs", "load-balanced", "output-queued",
            "pf", "foff",
        }

    def test_every_kernel_declares_exact_replay(self):
        for name in FAST_SWITCHES:
            model = models.get(name)
            assert models.Capability.EXACT_REPLAY in model.capabilities, name


class TestSeededParity:
    @pytest.mark.parametrize("switch", FAST_SWITCHES)
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    @pytest.mark.parametrize("load", [0.25, 0.85])
    def test_engines_agree_exactly(self, switch, pattern, load):
        matrix = PATTERNS[pattern](16, load)
        obj = run_single(
            switch, matrix, 3000, seed=5, load_label=load, engine="object"
        )
        fast = run_single(
            switch, matrix, 3000, seed=5, load_label=load, engine="vectorized"
        )
        _assert_results_identical(obj, fast)

    @pytest.mark.parametrize("switch", FAST_SWITCHES)
    def test_ordering_guarantee_cross_checked(self, switch):
        """Zero reordering wherever the object oracle reports zero."""
        matrix = uniform_matrix(8, 0.9)
        obj = run_single(switch, matrix, 2500, seed=2, engine="object")
        fast = run_single(switch, matrix, 2500, seed=2, engine="vectorized")
        assert fast.late_packets == obj.late_packets
        if switch != "load-balanced":
            assert fast.is_ordered and obj.is_ordered
        else:
            # The baseline is *expected* to reorder under load; both
            # engines must agree on exactly how much.
            assert not fast.is_ordered and not obj.is_ordered
            assert fast.max_displacement == obj.max_displacement

    def test_delay_breakdown_parity(self):
        """Assembly/input-queue/transit sums survive vectorization."""
        matrix = diagonal_matrix(16, 0.3)  # mixed stripe sizes
        obj = run_single("sprinklers", matrix, 4000, seed=9, engine="object")
        fast = run_single(
            "sprinklers", matrix, 4000, seed=9, engine="vectorized"
        )
        for key in (
            "mean_assembly_delay",
            "mean_input_queue_delay",
            "mean_transit_delay",
        ):
            assert obj.extras[key] == fast.extras[key]

    def test_mixed_stripe_sizes_exercised(self):
        """The parity workload must actually mix LSF priority classes."""
        from repro.core.interval_assignment import (
            PlacementMode,
            StripeIntervalAssignment,
        )

        matrix = diagonal_matrix(16, 0.3)
        assignment = StripeIntervalAssignment(
            matrix, rng=np.random.default_rng(0), mode=PlacementMode.OLS
        )
        sizes = {
            assignment.stripe_size(i, j) for i in range(16) for j in range(16)
        }
        assert len(sizes) >= 2


class TestPfFoffAcceptance:
    """The ISSUE-3 acceptance grid: PF and FOFF bit-identical between
    engines across sizes and scenarios (per-packet delays, reordering
    counts, and the switches' own extras — padding overhead, peak
    resequencer occupancy)."""

    SCENARIOS = ("incast", "mmpp-bursty", "quasi-diagonal", "lognormal-skew")

    @pytest.mark.parametrize("switch", ["pf", "foff"])
    @pytest.mark.parametrize("n", [2, 8, 32])
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scenario_grid(self, switch, n, scenario):
        results = {
            engine: run_single(
                switch,
                scenario=scenario,
                n=n,
                load=0.7,
                num_slots=1200,
                seed=4,
                engine=engine,
            )
            for engine in ENGINES
        }
        _assert_results_identical(results["object"], results["vectorized"])

    @pytest.mark.parametrize("switch", ["pf", "foff"])
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_matrix_grid(self, switch, n):
        matrix = diagonal_matrix(n, 0.85)
        obj = run_single(switch, matrix, 1500, seed=11, engine="object")
        fast = run_single(switch, matrix, 1500, seed=11, engine="vectorized")
        _assert_results_identical(obj, fast)

    def test_pf_padding_overhead_reported(self):
        """PF's fake-cell cost must survive vectorization exactly."""
        matrix = uniform_matrix(8, 0.4)  # light load => lots of padding
        obj = run_single("pf", matrix, 2000, seed=3, engine="object")
        fast = run_single("pf", matrix, 2000, seed=3, engine="vectorized")
        assert obj.extras["padding_overhead"] > 0
        assert fast.extras["padding_overhead"] == obj.extras["padding_overhead"]

    def test_foff_resequencer_peak_reported(self):
        """FOFF's O(N^2) resequencer claim is checked against this number,
        so the replay must reproduce the oracle's peak occupancy."""
        matrix = diagonal_matrix(16, 0.85)
        obj = run_single("foff", matrix, 2500, seed=6, engine="object")
        fast = run_single("foff", matrix, 2500, seed=6, engine="vectorized")
        assert fast.extras["max_resequencer"] == obj.extras["max_resequencer"]
        assert obj.extras["max_resequencer"] > 0  # partial frames do reorder
        # ... and the resequencers fully restore order.
        assert obj.is_ordered and fast.is_ordered


class TestEngineRouting:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_single(
                "ufs", uniform_matrix(4, 0.5), 100, engine="warp-drive"
            )
        assert set(ENGINES) == {"object", "vectorized"}

    def test_unsupported_switch_falls_back_to_object(self):
        """Mixed sweeps keep working: CMS has no vectorized kernel, so
        the vectorized route must return the object engine's result."""
        assert models.get("cms").kernel is None
        matrix = uniform_matrix(4, 0.6)
        obj = run_single("cms", matrix, 800, seed=1, engine="object")
        routed = run_single("cms", matrix, 800, seed=1, engine="vectorized")
        _assert_results_identical(obj, routed)

    def test_run_single_fast_rejects_unsupported(self):
        with pytest.raises(ValueError, match="no vectorized data path"):
            run_single_fast("cms", uniform_matrix(4, 0.5), 100)

    def test_run_single_fast_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown switch"):
            run_single_fast("warp-fabric", uniform_matrix(4, 0.5), 100)

    def test_sweep_jobs_carry_engine(self):
        matrix = uniform_matrix(8, 0.7)
        jobs = [
            SweepJob("sprinklers", matrix, 1200, 3, 0.7, "object"),
            SweepJob("sprinklers", matrix, 1200, 3, 0.7, "vectorized"),
        ]
        obj, fast = run_jobs(jobs, max_workers=1)
        _assert_results_identical(obj, fast)

    def test_sweepjob_engine_defaults_to_object(self):
        job = SweepJob("ufs", uniform_matrix(4, 0.5), 400, 1, 0.5)
        assert job.engine == "object"

    def test_replicate_engine_parity(self):
        """Identical per-seed results make identical confidence intervals."""
        from repro.sim.replication import replicate

        matrix = uniform_matrix(8, 0.6)
        obj = replicate(
            "ufs", matrix, 1500, replications=3, engine="object"
        )
        fast = replicate(
            "ufs", matrix, 1500, replications=3, engine="vectorized"
        )
        assert obj.values == fast.values
        assert obj.interval == fast.interval


class TestFastEngineBehaviour:
    def test_keep_samples_supports_ci(self):
        result = run_single_fast(
            "output-queued", uniform_matrix(8, 0.8), 4000, seed=1
        )
        ci = result.delay_ci(batches=10)
        assert ci.mean == pytest.approx(result.mean_delay, rel=0.2)

    @pytest.mark.parametrize("switch", FAST_SWITCHES)
    def test_delay_ci_matches_oracle_exactly(self, switch):
        """MSER truncation and batch means are order-sensitive, so the
        retained samples must be stored in the object engine's
        observation order — departure slot, within-slot tie-break —
        for error bars to reproduce across engines."""
        matrix = uniform_matrix(8, 0.9)
        obj = run_single(switch, matrix, 2000, seed=3, engine="object")
        fast = run_single(switch, matrix, 2000, seed=3, engine="vectorized")
        a, b = obj.delay_ci(batches=8), fast.delay_ci(batches=8)
        assert a.mean == b.mean
        assert a.half_width == b.half_width

    def test_no_samples_when_disabled(self):
        result = run_single_fast(
            "ufs", uniform_matrix(8, 0.8), 2000, seed=1, keep_samples=False
        )
        # Fused metrics: no per-packet arrays retained, yet the exact
        # histogram still yields the same percentiles a retained run
        # reports.
        assert result._delay_samples == []
        retained = run_single_fast(
            "ufs", uniform_matrix(8, 0.8), 2000, seed=1, keep_samples=True
        )
        assert result.p50_delay == retained.p50_delay
        assert result.p99_delay == retained.p99_delay
        assert not math.isnan(result.p50_delay)
        with pytest.raises(ValueError):
            result.delay_ci()

    @pytest.mark.parametrize("switch", ["sprinklers", "pf", "foff"])
    def test_zero_load_run_is_empty_but_valid(self, switch):
        result = run_single_fast(switch, uniform_matrix(8, 0.0), 500, seed=0)
        assert result.injected == 0
        assert result.departed == 0
        assert math.isnan(result.mean_delay)

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            run_single_fast(
                "ufs", uniform_matrix(4, 0.5), 100, warmup_fraction=1.5
            )
        with pytest.raises(ValueError):
            run_single_fast("ufs", uniform_matrix(4, 0.5), 0)
