"""Unit tests for the periodic fabrics (switching/fabric.py)."""

import pytest

from repro.switching.fabric import (
    DecreasingFabric,
    IncreasingFabric,
    PeriodicFabric,
    decreasing_connection,
    increasing_connection,
    input_poll_slot,
    output_source,
)


class TestConnectionFunctions:
    def test_increasing_is_permutation_each_slot(self):
        n = 8
        for t in range(2 * n):
            targets = [increasing_connection(i, t, n) for i in range(n)]
            assert sorted(targets) == list(range(n))

    def test_decreasing_is_permutation_each_slot(self):
        n = 8
        for t in range(2 * n):
            targets = [decreasing_connection(m, t, n) for m in range(n)]
            assert sorted(targets) == list(range(n))

    def test_each_pair_connected_once_per_period(self):
        n = 8
        for i in range(n):
            mids = {increasing_connection(i, t, n) for t in range(n)}
            assert mids == set(range(n))
        for m in range(n):
            outs = {decreasing_connection(m, t, n) for t in range(n)}
            assert outs == set(range(n))

    def test_output_source_inverts_decreasing(self):
        n = 8
        for j in range(n):
            for t in range(2 * n):
                m = output_source(j, t, n)
                assert decreasing_connection(m, t, n) == j

    def test_stripe_alignment_property(self):
        # The heart of Sprinklers' consistency: if an input writes to
        # consecutive intermediate ports in consecutive slots, the output
        # reads those ports in consecutive slots too.
        n = 8
        for j in range(n):
            for t in range(2 * n):
                assert output_source(j, t + 1, n) == (output_source(j, t, n) + 1) % n
        for i in range(n):
            for t in range(2 * n):
                assert (
                    increasing_connection(i, t + 1, n)
                    == (increasing_connection(i, t, n) + 1) % n
                )

    def test_input_poll_slot(self):
        n = 8
        for i in range(n):
            for m in range(n):
                t = input_poll_slot(i, m, n)
                assert 0 <= t < n
                assert increasing_connection(i, t, n) == m


class TestPeriodicFabric:
    def test_standard_fabrics_connect_each_pair_once(self):
        assert IncreasingFabric(8).connects_each_pair_once_per_period()
        assert DecreasingFabric(8).connects_each_pair_once_per_period()

    def test_subclass_fast_paths_match_sequences(self):
        n = 8
        inc = IncreasingFabric(n)
        dec = DecreasingFabric(n)
        for t in range(3 * n):
            for a in range(n):
                assert inc.egress(a, t) == PeriodicFabric.egress(inc, a, t)
                assert dec.egress(a, t) == PeriodicFabric.egress(dec, a, t)

    def test_generic_fabric_periodicity(self):
        fabric = PeriodicFabric([[1, 0], [0, 1]])
        assert fabric.period == 2
        assert fabric.egress(0, 0) == 1
        assert fabric.egress(0, 1) == 0
        assert fabric.egress(0, 2) == 1

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            PeriodicFabric([[0, 0]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PeriodicFabric([])

    def test_short_period_lacks_full_connectivity(self):
        fabric = PeriodicFabric([[0, 1]])  # identity only
        assert not fabric.connects_each_pair_once_per_period()
