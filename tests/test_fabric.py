"""Unit tests for the periodic fabrics (switching/fabric.py)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switching.fabric import (
    DecreasingFabric,
    IncreasingFabric,
    PeriodicFabric,
    decreasing_connection,
    increasing_connection,
    input_poll_slot,
    output_source,
)


class TestConnectionFunctions:
    def test_increasing_is_permutation_each_slot(self):
        n = 8
        for t in range(2 * n):
            targets = [increasing_connection(i, t, n) for i in range(n)]
            assert sorted(targets) == list(range(n))

    def test_decreasing_is_permutation_each_slot(self):
        n = 8
        for t in range(2 * n):
            targets = [decreasing_connection(m, t, n) for m in range(n)]
            assert sorted(targets) == list(range(n))

    def test_each_pair_connected_once_per_period(self):
        n = 8
        for i in range(n):
            mids = {increasing_connection(i, t, n) for t in range(n)}
            assert mids == set(range(n))
        for m in range(n):
            outs = {decreasing_connection(m, t, n) for t in range(n)}
            assert outs == set(range(n))

    def test_output_source_inverts_decreasing(self):
        n = 8
        for j in range(n):
            for t in range(2 * n):
                m = output_source(j, t, n)
                assert decreasing_connection(m, t, n) == j

    def test_stripe_alignment_property(self):
        # The heart of Sprinklers' consistency: if an input writes to
        # consecutive intermediate ports in consecutive slots, the output
        # reads those ports in consecutive slots too.
        n = 8
        for j in range(n):
            for t in range(2 * n):
                assert output_source(j, t + 1, n) == (output_source(j, t, n) + 1) % n
        for i in range(n):
            for t in range(2 * n):
                assert (
                    increasing_connection(i, t + 1, n)
                    == (increasing_connection(i, t, n) + 1) % n
                )

    def test_input_poll_slot(self):
        n = 8
        for i in range(n):
            for m in range(n):
                t = input_poll_slot(i, m, n)
                assert 0 <= t < n
                assert increasing_connection(i, t, n) == m


class TestPeriodicFabric:
    def test_standard_fabrics_connect_each_pair_once(self):
        assert IncreasingFabric(8).connects_each_pair_once_per_period()
        assert DecreasingFabric(8).connects_each_pair_once_per_period()

    def test_subclass_fast_paths_match_sequences(self):
        n = 8
        inc = IncreasingFabric(n)
        dec = DecreasingFabric(n)
        for t in range(3 * n):
            for a in range(n):
                assert inc.egress(a, t) == PeriodicFabric.egress(inc, a, t)
                assert dec.egress(a, t) == PeriodicFabric.egress(dec, a, t)

    def test_generic_fabric_periodicity(self):
        fabric = PeriodicFabric([[1, 0], [0, 1]])
        assert fabric.period == 2
        assert fabric.egress(0, 0) == 1
        assert fabric.egress(0, 1) == 0
        assert fabric.egress(0, 2) == 1

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            PeriodicFabric([[0, 0]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PeriodicFabric([])

    def test_short_period_lacks_full_connectivity(self):
        fabric = PeriodicFabric([[0, 1]])  # identity only
        assert not fabric.connects_each_pair_once_per_period()

    def test_lazy_subclasses_never_materialize_table(self):
        # The formula fabrics construct in O(1): no O(N^2) table unless
        # someone reads .sequence explicitly.
        inc = IncreasingFabric(512)
        dec = DecreasingFabric(512)
        assert inc._perms is None and dec._perms is None
        assert inc.connects_each_pair_once_per_period()
        assert inc._perms is None  # the check uses egress(), not the table
        small = IncreasingFabric(4)
        assert small.sequence == [[(i + t) % 4 for i in range(4)]
                                  for t in range(4)]
        assert small._perms is not None

    def test_lazy_constructor_validation(self):
        with pytest.raises(ValueError):
            PeriodicFabric(n=4)  # period missing
        with pytest.raises(ValueError):
            PeriodicFabric(period=4)  # n missing
        with pytest.raises(ValueError):
            PeriodicFabric(n=0, period=4)
        with pytest.raises(ValueError):
            PeriodicFabric([[0, 1]], n=2)  # both forms at once

    def test_lazy_build_validates_egress(self):
        class Broken(PeriodicFabric):
            def __init__(self):
                super().__init__(n=3, period=2)

            def egress(self, ingress, slot):
                return 0  # not a permutation

        fabric = Broken()
        with pytest.raises(ValueError):
            fabric.sequence


def _random_permutation_sequence(n, period, seed):
    rng = random.Random(seed)
    return [rng.sample(range(n), n) for _ in range(period)]


class TestPeriodicFabricProperties:
    """Property tests over arbitrary periodic permutation sequences."""

    @given(
        n=st.integers(min_value=1, max_value=12),
        period=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_connects_each_pair_once_iff_latin(self, n, period, seed):
        seq = _random_permutation_sequence(n, period, seed)
        fabric = PeriodicFabric(seq)
        assert fabric.n == n and fabric.period == period
        # Ground truth straight from the definition: period == n and every
        # ingress reaches every egress exactly once per period.
        expected = period == n and all(
            sorted(seq[t][i] for t in range(period)) == list(range(n))
            for i in range(n)
        )
        assert fabric.connects_each_pair_once_per_period() == expected

    @given(
        n=st.integers(min_value=1, max_value=10),
        period=st.integers(min_value=1, max_value=17),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_egress_is_periodic(self, n, period, seed):
        seq = _random_permutation_sequence(n, period, seed)
        fabric = PeriodicFabric(seq)
        for t in range(period):
            for i in range(n):
                assert fabric.egress(i, t) == seq[t][i]
                assert fabric.egress(i, t + period) == seq[t][i]
                assert fabric.egress(i, t + 3 * period) == seq[t][i]

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_standard_fabrics_are_latin_at_any_n(self, n):
        assert IncreasingFabric(n).connects_each_pair_once_per_period()
        assert DecreasingFabric(n).connects_each_pair_once_per_period()

    @given(
        n=st.integers(min_value=2, max_value=8),
        shift=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=30, deadline=None)
    def test_nonstandard_period_detected(self, n, shift):
        # A cyclic-shift sequence with period != n never yields the
        # once-per-period property, even though every slot is a valid
        # permutation.
        period = n + (shift % 3) + 1  # strictly > n
        seq = [[(i + t) % n for i in range(n)] for t in range(period)]
        assert not PeriodicFabric(seq).connects_each_pair_once_per_period()
