"""The switch-model plugin API (repro.models).

One registry for builders, vectorized kernels, and capabilities: these
tests pin the registry's contents for the built-in switches, the
alias/canonical-name resolution the store cache keys rely on, parameter
schema validation, custom registration, and entry-point discovery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import models
from repro.models import Capability, ParamSpec, SwitchModel
from repro.models import registry as registry_module
from repro.sim.experiment import run_single
from repro.traffic.matrices import uniform_matrix


@pytest.fixture()
def scratch_registry(monkeypatch):
    """A registry copy tests can mutate without leaking registrations."""
    monkeypatch.setattr(
        registry_module, "_MODELS", dict(registry_module._MODELS)
    )
    monkeypatch.setattr(
        registry_module, "_ALIASES", dict(registry_module._ALIASES)
    )
    return registry_module


class TestBuiltinRegistry:
    def test_paper_switches_all_registered(self):
        for name in models.PAPER_SWITCHES:
            assert name in models.available()

    def test_available_engine_filter(self):
        everything = models.available()
        vectorized = models.available(engine="vectorized")
        assert set(vectorized) <= set(everything)
        assert set(vectorized) == {
            "sprinklers", "ufs", "load-balanced", "output-queued",
            "pf", "foff",
        }
        assert models.available(engine="object") == everything

    def test_available_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            models.available(engine="quantum")

    def test_build_each_switch(self):
        matrix = uniform_matrix(8, 0.5)
        for name in models.available():
            switch = models.build(name, 8, matrix, seed=0)
            assert switch.n == 8

    def test_reported_names_match_object_switches(self):
        """The registry's reported_name is what results carry — it must
        agree with the instantiated switch's own name attribute."""
        matrix = uniform_matrix(4, 0.5)
        for name in models.available():
            model = models.get(name)
            switch = model.build(4, matrix, seed=0)
            assert switch.name == model.reported_name, name

    def test_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="unknown switch"):
            models.get("bogus")

    def test_aliases_resolve(self):
        assert models.get("baseline-lb") is models.get("load-balanced")
        assert models.canonical_name("baseline-lb") == "load-balanced"
        assert models.canonical_name("oq") == "output-queued"

    def test_feedback_coupled_switches_have_no_kernel(self):
        adaptive = models.get("sprinklers-adaptive")
        assert Capability.FEEDBACK_COUPLED in adaptive.capabilities
        assert adaptive.kernel is None

    def test_param_schema_validated(self):
        matrix = uniform_matrix(4, 0.5)
        pf = models.get("pf")
        switch = pf.build(4, matrix, seed=0, threshold=2)
        assert switch.threshold == 2
        with pytest.raises(ValueError, match="unknown parameters"):
            pf.build(4, matrix, seed=0, warp_factor=9)

    def test_switch_params_reach_both_engines(self):
        """Declared parameters flow through run_single: PF's threshold is
        honored by the kernel (parity holds), and a non-default threshold
        actually changes the physics."""
        matrix = uniform_matrix(8, 0.4)
        default = run_single("pf", matrix, 1500, seed=3)
        tight = run_single(
            "pf", matrix, 1500, seed=3, switch_params={"threshold": 1}
        )
        assert tight.extras["padding_overhead"] > default.extras[
            "padding_overhead"
        ]
        fast = run_single(
            "pf", matrix, 1500, seed=3, engine="vectorized",
            switch_params={"threshold": 1},
        )
        assert fast.mean_delay == tight.mean_delay
        assert fast.extras == tight.extras

    def test_unsupported_kernel_param_falls_back_to_object(self):
        """UFS's finite input_buffer drops packets — not modeled by the
        kernel — so the vectorized route must fall back to the object
        engine rather than silently mis-simulate."""
        from tests.test_scenarios import assert_results_identical

        matrix = uniform_matrix(4, 0.9)
        params = {"input_buffer": 8}
        obj = run_single("ufs", matrix, 2000, seed=2, switch_params=params)
        routed = run_single(
            "ufs", matrix, 2000, seed=2, engine="vectorized",
            switch_params=params,
        )
        assert obj.extras.get("dropped", 0) > 0  # the buffer really binds
        assert_results_identical(obj, routed)

    def test_run_single_fast_rejects_unsupported_param(self):
        from repro.sim.fast_engine import run_single_fast

        with pytest.raises(ValueError, match="not modeled"):
            run_single_fast(
                "ufs", uniform_matrix(4, 0.5), 100,
                switch_params={"input_buffer": 8},
            )

    def test_pf_threshold_range_checked_on_both_engines(self):
        """The kernel must enforce the same [1, N] contract as the object
        constructor — threshold 0 would otherwise pad empty VOQs forever."""
        matrix = uniform_matrix(4, 0.5)
        for bad in (0, 5):
            for engine in ("object", "vectorized"):
                with pytest.raises(ValueError, match=r"threshold must be"):
                    run_single(
                        "pf", matrix, 200, engine=engine,
                        switch_params={"threshold": bad},
                    )

    def test_run_single_rejects_undeclared_param(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            run_single(
                "pf", uniform_matrix(4, 0.5), 100,
                switch_params={"warp_factor": 9},
            )

    def test_switch_params_change_cache_key(self):
        from repro.sim.experiment import single_run_params
        from repro.store import cache_key

        common = dict(
            switch_name="pf", matrix=uniform_matrix(4, 0.5), num_slots=500,
            seed=0, load_label=0.5, warmup_fraction=0.1, keep_samples=True,
            engine="object", spec=None,
        )
        base = cache_key(single_run_params(**common))
        tuned = cache_key(
            single_run_params(**common, switch_params={"threshold": 2})
        )
        assert base != tuned
        # Explicit empty params hash like the historical no-params form.
        assert base == cache_key(single_run_params(**common, switch_params={}))

    def test_kernel_params_must_be_declared(self):
        with pytest.raises(ValueError, match="not in the declared"):
            SwitchModel(
                name="mismatched",
                builder=lambda n, matrix, seed: None,
                kernel=lambda batch, matrix, seed: None,
                kernel_params=("ghost",),
            )

    def test_run_single_accepts_alias(self):
        """Aliases canonicalize before execution (and before cache keys)."""
        matrix = uniform_matrix(4, 0.6)
        via_alias = run_single("baseline-lb", matrix, 400, seed=1)
        canonical = run_single("load-balanced", matrix, 400, seed=1)
        assert via_alias.mean_delay == canonical.mean_delay
        assert via_alias.switch_name == "baseline-lb"  # the reported name


class TestCustomRegistration:
    def test_register_and_run(self, scratch_registry):
        from repro.switching.output_queued import OutputQueuedSwitch

        class Renamed(OutputQueuedSwitch):
            name = "my-oq"

        scratch_registry.register(SwitchModel(
            name="my-oq",
            builder=lambda n, matrix, seed: Renamed(n),
            capabilities={Capability.SUPPORTS_DRIFT},
        ))
        assert "my-oq" in scratch_registry.available()
        result = run_single("my-oq", uniform_matrix(4, 0.5), 300)
        assert result.switch_name == "my-oq"
        assert result.measured_packets > 0

    def test_register_refuses_overwrite(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            scratch_registry.register(scratch_registry.get("ufs"))

    def test_register_replace_allows_override(self, scratch_registry):
        model = scratch_registry.get("ufs")
        assert scratch_registry.register(model, replace=True) is model

    def test_alias_clash_refused(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):
            scratch_registry.register(SwitchModel(
                name="fresh-name",
                builder=lambda n, matrix, seed: None,
                aliases=("ufs",),  # clashes with a canonical name
            ))

    def test_feedback_coupled_kernel_rejected(self):
        with pytest.raises(ValueError, match="feedback-coupled"):
            SwitchModel(
                name="impossible",
                builder=lambda n, matrix, seed: None,
                kernel=lambda batch, matrix, seed: None,
                capabilities={Capability.FEEDBACK_COUPLED},
            )

    def test_model_repr_mentions_engines(self):
        assert "object+vectorized" in repr(models.get("pf"))
        assert repr(models.get("cms")).count("object") == 1


class TestEntryPointDiscovery:
    class _Entry:
        def __init__(self, name, payload):
            self.name = name
            self._payload = payload

        def load(self):
            if isinstance(self._payload, Exception):
                raise self._payload
            return self._payload

    def test_discovers_models_from_entries(self, scratch_registry):
        model = SwitchModel(
            name="third-party",
            builder=lambda n, matrix, seed: None,
        )
        count = scratch_registry.discover_entry_points(
            entries=[self._Entry("third-party", model)]
        )
        assert count == 1
        assert scratch_registry.get("third-party") is model

    def test_factory_and_list_payloads(self, scratch_registry):
        mk = lambda name: SwitchModel(  # noqa: E731
            name=name, builder=lambda n, matrix, seed: None
        )
        count = scratch_registry.discover_entry_points(
            entries=[
                self._Entry("factory", lambda: mk("from-factory")),
                self._Entry("pair", [mk("plug-a"), mk("plug-b")]),
            ]
        )
        assert count == 3
        for name in ("from-factory", "plug-a", "plug-b"):
            assert name in scratch_registry.available()

    def test_broken_plugin_is_a_warning_not_a_crash(self, scratch_registry):
        before = scratch_registry.available()
        with pytest.warns(RuntimeWarning, match="failed to load"):
            count = scratch_registry.discover_entry_points(
                entries=[self._Entry("broken", RuntimeError("boom"))]
            )
        assert count == 0
        assert scratch_registry.available() == before

    def test_non_model_payload_is_a_warning(self, scratch_registry):
        with pytest.warns(RuntimeWarning, match="not SwitchModel"):
            scratch_registry.discover_entry_points(
                entries=[self._Entry("junk", object())]
            )


class TestParamSpec:
    def test_repr(self):
        spec = ParamSpec("threshold", int, None, "minimum VOQ length")
        assert "threshold" in repr(spec)
        assert "int" in repr(spec)


class TestKernelContract:
    def test_kernels_return_departures_and_extras(self):
        """The kernel protocol the fast engine relies on: every registered
        kernel consumes (batch, matrix, seed) and returns the departure
        record plus optional extras."""
        from repro.sim.kernels.base import Departures
        from repro.traffic.batch import bernoulli_batch

        matrix = np.asarray(uniform_matrix(4, 0.6))
        for name in models.available(engine="vectorized"):
            gen = bernoulli_batch(matrix, seed=1)
            batch = gen.draw(300)
            dep, extras = models.get(name).kernel(batch, matrix, 1)
            assert isinstance(dep, Departures), name
            assert extras is None or isinstance(extras, dict), name
            assert len(dep.departure) == len(dep.voq), name
            if len(dep):
                assert int((dep.departure - dep.arrival).min()) >= 0, name
