"""Structural invariants of the frame-based baselines (UFS / FOFF / PF).

UFS's no-reordering argument (paper §2.2 / [11]) rests on the equal-queue
property: every frame deposits exactly one packet into each per-output
FIFO at the intermediate stage.  Instantaneous queue lengths may diverge
transiently (several inputs can be mid-spread toward the same output at
once, plus the output's round-robin drain position), but *cumulative*
deposits equalize exactly once all frames finish spreading.  PF preserves
the property by padding; FOFF deliberately gives it up for partial frames
— the residue its output resequencers absorb.
"""

import numpy as np

from repro.switching.foff import FoffSwitch
from repro.switching.pf import PaddedFramesSwitch
from repro.switching.ufs import UfsSwitch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def run_and_drain(switch, matrix, slots, seed=3):
    traffic = TrafficGenerator(matrix, np.random.default_rng(seed))
    transient_spread = 0
    n = switch.n
    for slot, packets in traffic.slots(slots):
        switch.step(slot, packets)
        if slot % 13 == 0:
            for j in range(n):
                lengths = [
                    len(switch._mid_banks[m].queue(j)) for m in range(n)
                ]
                transient_spread = max(
                    transient_spread, max(lengths) - min(lengths)
                )
    switch.drain(30 * n)
    return transient_spread


def cumulative_deposits(switch, output):
    """Packets ever enqueued for ``output`` at each intermediate port."""
    return [
        switch._mid_banks[m].queue(output).total_enqueued
        for m in range(switch.n)
    ]


class TestEqualQueueInvariant:
    def test_ufs_cumulative_deposits_equal(self):
        n = 8
        switch = UfsSwitch(n)
        run_and_drain(switch, uniform_matrix(n, 0.8), 4000)
        for j in range(n):
            deposits = cumulative_deposits(switch, j)
            assert len(set(deposits)) == 1, (j, deposits)

    def test_pf_cumulative_deposits_equal_with_fakes(self):
        n = 8
        switch = PaddedFramesSwitch(n, threshold=3)
        run_and_drain(switch, uniform_matrix(n, 0.5), 4000)
        for j in range(n):
            deposits = cumulative_deposits(switch, j)
            assert len(set(deposits)) == 1, (j, deposits)

    def test_foff_partial_frames_break_equality(self):
        n = 8
        switch = FoffSwitch(n)
        # Light load: mostly partial frames, the equality-breaking case.
        run_and_drain(switch, uniform_matrix(n, 0.3), 6000)
        unequal_outputs = sum(
            1
            for j in range(n)
            if len(set(cumulative_deposits(switch, j))) > 1
        )
        assert unequal_outputs > 0

    def test_transient_spread_bounded_by_concurrent_frames(self):
        # At most N frames (one per input) can be mid-spread toward one
        # output, plus the drain offset: spread <= N + 1.
        n = 8
        switch = UfsSwitch(n)
        spread = run_and_drain(switch, uniform_matrix(n, 0.9), 4000)
        assert spread <= n + 1


class TestFrameAccounting:
    def test_ufs_departures_are_whole_frames(self):
        # Total departures must be a multiple of N: UFS never ships a
        # partial frame.
        n = 8
        switch = UfsSwitch(n)
        traffic = TrafficGenerator(
            uniform_matrix(n, 0.7), np.random.default_rng(1)
        )
        departed = 0
        for slot, packets in traffic.slots(3000):
            departed += len(switch.step(slot, packets))
        departed += len(switch.drain(4000))
        assert departed % n == 0

    def test_pf_wire_volume_is_whole_frames(self):
        # Real + fake departures together form whole frames.
        n = 8
        switch = PaddedFramesSwitch(n, threshold=2)
        traffic = TrafficGenerator(
            uniform_matrix(n, 0.4), np.random.default_rng(2)
        )
        for slot, packets in traffic.slots(3000):
            switch.step(slot, packets)
        switch.drain(6000)
        assert (switch.departed + switch.fake_departed) % n == 0
