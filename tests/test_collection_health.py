"""Collection health: every test module must be importable.

The seed repo shipped six test modules that pytest could not even
collect — a conftest shadowing bug turned them into ImportErrors, and
40+ tests of the paper's core contribution silently stopped running.
This meta-test makes that whole bug class loud: it imports every
``tests/test_*.py`` file directly, so any import-time breakage surfaces
as one clear failure naming the module, even if someone reintroduces a
sys.path/conftest hazard that pytest's own collection happens to survive.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).resolve().parent
TEST_MODULES = sorted(p.name for p in TESTS_DIR.glob("test_*.py"))

#: The six modules the shadowing bug knocked out of collection; their
#: presence here guards against the suite silently shrinking again.
ONCE_SHADOWED = [
    "test_baseline_switches.py",
    "test_cms.py",
    "test_finite_buffers.py",
    "test_sprinklers_invariants.py",
    "test_sprinklers_switch.py",
    "test_switch_base.py",
]


def test_expected_modules_present():
    assert set(ONCE_SHADOWED) <= set(TEST_MODULES)


@pytest.mark.parametrize("filename", TEST_MODULES)
def test_module_imports_cleanly(filename):
    path = TESTS_DIR / filename
    alias = f"_collection_health.{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(alias, path)
    module = importlib.util.module_from_spec(spec)
    # Register before exec so dataclass/pickle-style self-references work.
    sys.modules[alias] = module
    try:
        spec.loader.exec_module(module)
    except ImportError as exc:  # pragma: no cover - the failure mode itself
        pytest.fail(
            f"{filename} cannot be imported ({exc}); its tests are "
            "invisible to pytest — fix the import before anything else"
        )
    finally:
        sys.modules.pop(alias, None)


def test_helpers_not_importable_as_bare_conftest():
    """The bug pattern itself: helper imports must be package-qualified.

    A bare ``from conftest import ...`` resolves against whichever
    conftest.py got onto sys.path first — that is how six modules went
    dark.  No test module may use it.
    """
    offenders = [
        name
        for name in TEST_MODULES
        for line in (TESTS_DIR / name).read_text().splitlines()
        if line.strip().startswith("from conftest import")
        or line.strip() == "import conftest"
    ]
    assert not offenders, (
        f"bare conftest imports found in {offenders}; import from "
        "tests.helpers instead"
    )
