"""Test suite package.

Being a package lets test modules import shared helpers as
``from tests.helpers import ...`` — an absolute, unambiguous path that no
same-named file elsewhere in the repo can shadow (the failure mode that
once hid six test modules behind ``benchmarks/conftest.py``).
"""
