"""Unit tests for switch-wide interval assignment (core/interval_assignment.py)."""

import numpy as np
import pytest

from repro.core.interval_assignment import PlacementMode, StripeIntervalAssignment
from repro.core.striping import stripe_size_for_rate
from repro.traffic.matrices import diagonal_matrix, uniform_matrix


def make_assignment(n=8, load=0.8, mode=PlacementMode.OLS, seed=0, **kwargs):
    return StripeIntervalAssignment(
        uniform_matrix(n, load),
        rng=np.random.default_rng(seed),
        mode=mode,
        **kwargs,
    )


class TestConstruction:
    def test_interval_contains_primary_port(self):
        a = make_assignment()
        for i in range(a.n):
            for j in range(a.n):
                assert a.interval(i, j).contains_port(a.primary_port(i, j))

    def test_sizes_follow_equation_one(self):
        n = 8
        matrix = diagonal_matrix(n, 0.9)
        a = StripeIntervalAssignment(matrix, rng=np.random.default_rng(1))
        for i in range(n):
            for j in range(n):
                assert a.stripe_size(i, j) == stripe_size_for_rate(
                    float(matrix[i][j]), n
                )

    def test_ols_mode_is_coordinated(self):
        assert make_assignment(mode=PlacementMode.OLS).is_coordinated()

    def test_identity_mode_is_coordinated(self):
        a = StripeIntervalAssignment(
            uniform_matrix(8, 0.5), mode=PlacementMode.IDENTITY
        )
        assert a.is_coordinated()
        assert a.primary_port(0, 0) == 0

    def test_independent_mode_rows_are_permutations(self):
        a = make_assignment(mode=PlacementMode.INDEPENDENT, n=16)
        for row in a.square:
            assert sorted(row) == list(range(16))

    def test_fixed_stripe_size_override(self):
        a = make_assignment(fixed_stripe_size=4)
        for i in range(a.n):
            for j in range(a.n):
                assert a.stripe_size(i, j) == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            StripeIntervalAssignment(uniform_matrix(8, 0.5), rng=None)
        with pytest.raises(ValueError):
            StripeIntervalAssignment(
                uniform_matrix(8, 0.5),
                rng=np.random.default_rng(0),
                mode="bogus",
            )
        with pytest.raises(ValueError):
            make_assignment(fixed_stripe_size=3)
        with pytest.raises(ValueError):
            StripeIntervalAssignment(
                np.full((6, 6), 0.1), rng=np.random.default_rng(0)
            )  # n not a power of two
        with pytest.raises(ValueError):
            StripeIntervalAssignment(
                -uniform_matrix(8, 0.5), rng=np.random.default_rng(0)
            )


class TestLoadAccounting:
    def test_input_loads_sum_to_row_load(self):
        a = make_assignment(n=8, load=0.8)
        for i in range(8):
            assert np.isclose(a.input_port_loads(i).sum(), 0.8)

    def test_output_loads_sum_to_column_load(self):
        a = make_assignment(n=8, load=0.8)
        for j in range(8):
            assert np.isclose(a.output_port_loads(j).sum(), 0.8)

    def test_uniform_traffic_is_balanced_under_ols(self):
        # At uniform load every VOQ has the same rate and size, and the OLS
        # places exactly one primary port per intermediate per input, so
        # loads are perfectly balanced.
        a = make_assignment(n=16, load=0.9)
        for i in range(16):
            loads = a.input_port_loads(i)
            assert np.allclose(loads, loads[0])

    def test_max_queue_load_stable_below_threshold(self):
        # Theorem 1: below ~2/3 load no queue can reach 1/N.
        a = make_assignment(n=16, load=0.6, seed=3)
        assert a.max_queue_load() < 1.0 / 16
        assert a.overloaded_queues() == []

    def test_identity_placement_hits_adversarial_overload(self):
        # The no-randomization ablation: with a deterministic placement an
        # adversary can aim the Theorem 1 extremal rate vector exactly at
        # one queue and overload it at total load only ~2/3.
        from repro.analysis.stability import worst_case_rates

        n = 16
        matrix = np.zeros((n, n))
        # Identity placement maps VOQ j of input 0 to primary port j, so
        # laying the extremal vector along row 0 recreates the worst case.
        matrix[0, :] = worst_case_rates(n)
        ident = StripeIntervalAssignment(matrix, mode=PlacementMode.IDENTITY)
        assert ident.max_queue_load() >= 1.0 / n - 1e-12
        assert ("input", 0, 0) in ident.overloaded_queues()

    def test_random_placement_usually_avoids_the_adversarial_overload(self):
        # The same extremal rates under random OLS placement: most seeds
        # dodge the overload (section 4 bounds the exceptional probability).
        from repro.analysis.stability import worst_case_rates

        n = 16
        matrix = np.zeros((n, n))
        matrix[0, :] = worst_case_rates(n, scale=0.999)
        safe = 0
        for seed in range(20):
            a = StripeIntervalAssignment(
                matrix, rng=np.random.default_rng(seed), mode=PlacementMode.OLS
            )
            if a.max_queue_load() < 1.0 / n:
                safe += 1
        assert safe == 20  # below threshold, *every* placement is safe


class TestRepr:
    def test_repr_mentions_mode(self):
        assert "ols" in repr(make_assignment())
