"""Tests for the per-stage delay decomposition."""

import math

import pytest

from repro.analysis.chernoff import min_switch_size
from repro.sim.experiment import run_single
from repro.traffic.matrices import uniform_matrix


N = 8
SLOTS = 8000


def breakdown_of(name, load=0.3, slots=SLOTS, seed=2):
    result = run_single(
        name, uniform_matrix(N, load), slots, seed=seed,
        load_label=load, keep_samples=False,
    )
    return result, {
        key.removeprefix("mean_").removesuffix("_delay"): value
        for key, value in result.extras.items()
        if key.startswith("mean_") and key.endswith("_delay")
    }


class TestBreakdownStructure:
    @pytest.mark.parametrize("name", ["sprinklers", "ufs", "pf", "foff", "cms"])
    def test_components_sum_to_total(self, name):
        result, parts = breakdown_of(name)
        assert set(parts) == {"assembly", "input_queue", "transit"}
        total = parts["assembly"] + parts["input_queue"] + parts["transit"]
        # The stamped population is the measured population for these
        # switches, so the components reconstruct the mean exactly.
        assert total == pytest.approx(result.mean_delay, rel=1e-9)

    def test_baseline_has_no_breakdown(self):
        result, parts = breakdown_of("load-balanced")
        assert parts == {}  # no aggregation stage, no stamps

    def test_components_nonnegative(self):
        _, parts = breakdown_of("sprinklers")
        assert all(value >= 0 for value in parts.values())


class TestBreakdownEconomics:
    def test_ufs_assembly_dominates_at_light_load(self):
        _, ufs = breakdown_of("ufs", load=0.2)
        assert ufs["assembly"] > 3 * (ufs["input_queue"] + ufs["transit"])

    def test_sprinklers_assembly_far_below_ufs_at_light_load(self):
        _, spr = breakdown_of("sprinklers", load=0.2)
        _, ufs = breakdown_of("ufs", load=0.2)
        assert spr["assembly"] < 0.4 * ufs["assembly"]

    def test_foff_transit_includes_resequencing(self):
        # FOFF's resequencers hold packets at the output: its transit
        # share must exceed UFS's (same fabric, no resequencer).
        _, foff = breakdown_of("foff", load=0.3)
        _, ufs = breakdown_of("ufs", load=0.3)
        assert foff["transit"] > ufs["transit"]


class TestMinSwitchSize:
    def test_doc_values(self):
        # switch-wide bound at rho=0.95: 2048 gives ~1e-2, 4096 ~5e-11.
        assert min_switch_size(0.95, 1e-6) == 4096
        assert min_switch_size(0.90, 1e-9) == 1024

    def test_monotone_in_target(self):
        loose = min_switch_size(0.95, 1e-3)
        tight = min_switch_size(0.95, 1e-12)
        assert loose <= tight

    def test_unreachable_returns_none(self):
        assert min_switch_size(0.999999, 1e-300, max_n=64) is None

    def test_per_queue_variant_smaller(self):
        wide = min_switch_size(0.95, 1e-6, switch_wide=True)
        per_queue = min_switch_size(0.95, 1e-6, switch_wide=False)
        assert per_queue <= wide

    def test_target_validated(self):
        with pytest.raises(ValueError):
            min_switch_size(0.95, 0.0)
