"""Tests for the simulation driver (sim/engine.py)."""

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine, simulate
from repro.switching.baseline import BaselineLoadBalancedSwitch
from repro.switching.ufs import UfsSwitch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def make_engine(n=8, load=0.6, seed=0, **kwargs):
    switch = BaselineLoadBalancedSwitch(n)
    traffic = TrafficGenerator(uniform_matrix(n, load), np.random.default_rng(seed))
    return SimulationEngine(switch, traffic, **kwargs)


class TestEngine:
    def test_runs_and_summarizes(self):
        result = make_engine().run(2000, load_label=0.6)
        assert result.load == 0.6
        assert result.measured_packets > 0
        assert result.mean_delay > 0

    def test_warmup_discards_early_arrivals(self):
        full = make_engine(seed=1, warmup_fraction=0.0).run(2000)
        cut = make_engine(seed=1, warmup_fraction=0.5).run(2000)
        assert cut.measured_packets < full.measured_packets

    def test_drain_collects_stragglers(self):
        no_drain = make_engine(seed=2, drain=False).run(500)
        drained = make_engine(seed=2, drain=True).run(500)
        assert drained.measured_packets >= no_drain.measured_packets

    def test_deterministic_given_seed(self):
        a = make_engine(seed=3).run(1500)
        b = make_engine(seed=3).run(1500)
        assert a.mean_delay == b.mean_delay
        assert a.measured_packets == b.measured_packets

    def test_size_mismatch_rejected(self):
        switch = BaselineLoadBalancedSwitch(4)
        traffic = TrafficGenerator(
            uniform_matrix(8, 0.5), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            SimulationEngine(switch, traffic)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            make_engine(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            make_engine().run(0)

    def test_extras_collected_for_capable_switches(self):
        n = 8
        switch = UfsSwitch(n)
        traffic = TrafficGenerator(
            uniform_matrix(n, 0.5), np.random.default_rng(0)
        )
        result = SimulationEngine(switch, traffic).run(1000)
        assert "max_resequencer" not in result.extras  # UFS has none

    def test_simulate_wrapper(self):
        switch = BaselineLoadBalancedSwitch(4)
        traffic = TrafficGenerator(
            uniform_matrix(4, 0.5), np.random.default_rng(5)
        )
        result = simulate(switch, traffic, 500, load_label=0.5)
        assert result.load == 0.5
