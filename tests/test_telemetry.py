"""The telemetry layer: instruments, probes, parity, and the CLI surface.

The two non-negotiable properties:

* **Off by default, truly off.** No run result, store key, or RNG draw
  may change because of a probe; disabled probes return shared no-op
  handles and record nothing.
* **On means observable.** An enabled streamed/fabric run yields a JSONL
  trace whose spans nest correctly and whose per-stage child spans
  telescope to the replay total (``check_trace`` — the same gate the CI
  smoke job runs), plus a metrics snapshot carrying every probe family.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import telemetry
from repro.cli import main
from repro.sim.experiment import (
    delay_vs_load_sweep,
    run_single,
    single_run_params,
)
from repro.store import ExperimentStore, cache_key
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import (
    Tracer,
    check_trace,
    diff_traces,
    read_trace,
    summarize_trace,
    validate_nesting,
)
from repro.traffic.matrices import uniform_matrix


class TestSwitch:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()

    def test_scope_enables_and_restores(self):
        assert not telemetry.enabled()
        with telemetry.scope() as tel:
            assert telemetry.enabled()
            assert tel is telemetry.state()
        assert not telemetry.enabled()

    def test_scope_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.scope():
                raise RuntimeError("boom")
        assert not telemetry.enabled()

    def test_enable_fresh_drops_prior_instruments(self):
        with telemetry.scope() as tel:
            telemetry.count("stale.counter")
            telemetry.enable(fresh=True)
            assert telemetry.state().registry.get("stale.counter") is None
            assert telemetry.state() is tel  # same state, fresh instruments

    def test_env_parsing(self):
        assert telemetry.enabled_from_env({"REPRO_TELEMETRY": "1"})
        assert telemetry.enabled_from_env({"REPRO_TELEMETRY": "On"})
        assert not telemetry.enabled_from_env({"REPRO_TELEMETRY": "0"})
        assert not telemetry.enabled_from_env({})
        assert telemetry.memory_from_env({"REPRO_TELEMETRY_MEM": "yes"})


class TestInstruments:
    def test_counter(self):
        c = Counter("c")
        c.add()
        c.add(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_tracks_extrema(self):
        g = Gauge("g")
        for v in (3.0, -1.0, 7.0):
            g.set(v)
        snap = g.snapshot()
        assert snap["value"] == 7.0
        assert snap["max"] == 7.0
        assert snap["min"] == -1.0
        assert snap["updates"] == 3

    def test_histogram_streaming_moments(self):
        import statistics

        h = Histogram("h")
        values = [1.0, 2.0, 3.0, 4.0, 10.0]
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["mean"] == pytest.approx(statistics.mean(values))
        assert snap["std"] == pytest.approx(statistics.stdev(values))
        assert snap["min"] == 1.0 and snap["max"] == 10.0

    def test_registry_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")
        assert reg.names() == ["x"]

    def test_disabled_probes_record_nothing(self):
        assert not telemetry.enabled()
        telemetry.count("ghost.counter")
        telemetry.observe("ghost.hist", 1.0)
        telemetry.set_gauge("ghost.gauge", 1.0)
        assert telemetry.state().registry.get("ghost.counter") is None
        assert telemetry.state().registry.get("ghost.hist") is None
        assert telemetry.state().registry.get("ghost.gauge") is None


class TestSpans:
    def test_disabled_trace_is_shared_null_handle(self):
        assert not telemetry.enabled()
        handle = telemetry.trace("x")
        assert handle is telemetry.trace("y")
        assert handle.span is None
        handle.set(k=1)  # no-op, no error
        with handle:
            pass

    def test_disabled_traced_iter_returns_untouched(self):
        items = [1, 2, 3]
        assert list(telemetry.traced_iter("x", items)) == items

    def test_nesting_and_late_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", a=1):
            with tracer.span("inner") as inner:
                inner.set(b=2)
        spans = tracer.spans
        assert [s.name for s in spans] == ["inner", "outer"]  # completion order
        inner, outer = spans
        assert inner.parent == outer.id
        assert inner.depth == 1 and outer.depth == 0
        assert inner.attrs == {"b": 2}
        assert outer.attrs == {"a": 1}
        assert 0 <= inner.dur_s <= outer.dur_s

    def test_export_read_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.scope():
            with telemetry.trace("root", note="hi"):
                with telemetry.trace("child"):
                    telemetry.count("events", 3)
            assert telemetry.export_jsonl(path) == 2
        trace = read_trace(path)
        assert trace["meta"]["spans"] == 2
        assert validate_nesting(trace["spans"]) == []
        assert trace["metrics"]["events"]["value"] == 3
        summary = summarize_trace(trace)
        assert summary["by_name"]["root"]["count"] == 1
        assert [r["name"] for r in summary["roots"]] == ["root"]

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace(bad)
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"record": "span", "id": 0}\n')
        with pytest.raises(ValueError):
            read_trace(headless)

    def test_non_json_attrs_survive_export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.scope():
            with telemetry.trace("root", where=tmp_path):  # a Path attr
                pass
            telemetry.export_jsonl(path)
        (span,) = read_trace(path)["spans"]
        assert span["attrs"]["where"] == str(tmp_path)

    def test_diff_traces(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, names in ((a, ["x"]), (b, ["x", "y"])):
            with telemetry.scope():
                for name in names:
                    with telemetry.trace(name):
                        pass
                telemetry.export_jsonl(path)
        rows = {r["name"]: r for r in diff_traces(read_trace(a), read_trace(b))}
        assert rows["y"]["a_total_s"] == 0.0
        assert rows["y"]["ratio"] is None
        assert rows["x"]["ratio"] is not None

    def test_check_trace_flags_broken_nesting(self):
        trace = {
            "meta": {},
            "metrics": None,
            "spans": [
                {
                    "record": "span", "id": 0, "parent": None, "depth": 0,
                    "name": "root", "start_s": 0.0, "dur_s": 1.0, "attrs": {},
                },
                # Child claims more time than its parent has.
                {
                    "record": "span", "id": 1, "parent": 0, "depth": 1,
                    "name": "child", "start_s": 0.0, "dur_s": 2.0, "attrs": {},
                },
            ],
        }
        problems = check_trace(trace)
        assert any("exceeds parent" in p for p in problems)
        assert any("ends after its parent" in p for p in problems)


class TestRunProbes:
    """The wired probes: every family fires on an enabled run."""

    def test_streamed_run_trace_telescopes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.scope() as tel:
            run_single(
                "sprinklers",
                uniform_matrix(8, 0.6),
                4000,
                seed=1,
                engine="vectorized",
                window_slots=500,
            )
            telemetry.export_jsonl(path)
            windows = tel.registry.counter("replay.windows").value
        trace = read_trace(path)
        # The CI gate, slightly loosened: tiny windows make the fixed
        # per-window Python overhead a visible fraction of the span.
        assert check_trace(trace, coverage=0.75) == []
        assert windows == 8
        names = {s["name"] for s in trace["spans"]}
        assert {
            "run.single", "replay.stream", "replay.window",
            "traffic.draw", "replay.finish", "stage.feed",
        } <= names
        metrics = trace["metrics"]
        assert metrics["replay.window.slots_per_s"]["count"] == 8
        assert metrics["replay.window.packets_per_s"]["count"] == 8

    def test_fabric_run_trace_and_stage_labels(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.scope() as tel:
            run_single(
                "leaf-spine",
                uniform_matrix(8, 0.6),
                4000,
                seed=1,
                engine="vectorized",
                window_slots=500,
            )
            telemetry.export_jsonl(path)
            names = tel.registry.names()
        trace = read_trace(path)
        assert check_trace(trace, coverage=0.75) == []
        span_names = {s["name"] for s in trace["spans"]}
        assert {
            "run.fabric", "replay.fabric", "fabric.window",
            "fabric.couple", "fabric.join", "fabric.finish", "stage.feed",
        } <= span_names
        # Per-stage labels carry position + switch name.
        assert "stage.feed_s.stage0.sprinklers" in names
        assert "stage.feed_s.stage1.output-queued" in names
        assert "fabric.in_flight.stage1" in names
        # Per-stage feed spans telescope into the fabric windows: the
        # feeds must not exceed their windows' total.
        by_name = summarize_trace(trace)["by_name"]
        assert (
            by_name["stage.feed"]["total_s"]
            <= by_name["fabric.window"]["total_s"] * 1.001
        )

    def test_frame_kernel_counters(self):
        with telemetry.scope() as tel:
            run_single(
                "pf",
                uniform_matrix(8, 0.7),
                2000,
                seed=0,
                engine="vectorized",
            )
            lane = tel.registry.get("kernel.frames.lane_advances")
            jumps = tel.registry.get("kernel.frames.cursor_jumps")
        assert lane is not None and lane.value > 0
        assert jumps is not None and jumps.value >= 0

    def test_store_metrics(self, tmp_path):
        store = ExperimentStore(tmp_path)
        with telemetry.scope() as tel:
            run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
            assert tel.registry.counter("store.miss").value == 1
            assert tel.registry.counter("store.save").value == 1
            run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
            assert tel.registry.counter("store.hit").value == 1
            assert tel.registry.histogram("store.fetch_s").count == 1

    def test_parallel_pool_utilization(self):
        from repro.sim.parallel import SweepJob, run_jobs

        jobs = [
            SweepJob("ufs", uniform_matrix(4, 0.5), 300, seed, 0.5, "object")
            for seed in range(3)
        ]
        with telemetry.scope() as tel:
            results = run_jobs(jobs, max_workers=2)
            util = tel.registry.gauge("parallel.utilization").snapshot()
            job_s = tel.registry.histogram("parallel.job_s").count
            pool_spans = tel.tracer.find("sweep.pool")
        assert len(results) == 3
        assert job_s == 3
        assert 0.0 < util["value"] <= 1.0
        assert len(pool_spans) == 1
        assert pool_spans[0].attrs == {"jobs": 3, "workers": 2}

    def test_replicate_span(self):
        from repro.sim.replication import replicate

        with telemetry.scope() as tel:
            replicate(
                "sprinklers",
                uniform_matrix(4, 0.5),
                400,
                replications=2,
                engine="vectorized",
                batch_seeds=True,
            )
            (span,) = tel.tracer.find("run.replicate")
        assert span.attrs["batched"] is True
        assert span.attrs["replications"] == 2

    def test_sweep_span_and_capture_extras(self):
        with telemetry.scope():
            results = delay_vs_load_sweep(
                "uniform", n=4, loads=[0.5], switches=["ufs"],
                num_slots=300, engine="object",
            )
            (sweep_span,) = telemetry.state().tracer.find("sweep.delay_vs_load")
        (result,) = results
        payload = result.extras["telemetry"]
        assert payload["span"] == "run.single"
        assert payload["wall_s"] > 0
        assert "metrics" in payload
        assert sweep_span.attrs["loads"] == 1

    def test_capture_memory_payload(self):
        with telemetry.scope(memory=True):
            result = run_single("ufs", uniform_matrix(4, 0.5), 300)
        payload = result.extras["telemetry"]
        assert payload["peak_rss_bytes"] > 0
        assert payload["tracemalloc_peak_bytes"] > 0
        # as_row stays flat: the nested payload never leaks into tables.
        assert "telemetry" not in result.as_row()


class TestParity:
    """Telemetry observes; it must never change what runs compute."""

    def test_grid_bit_identical_and_extras_clean(self):
        kwargs = dict(
            pattern="uniform", n=4, loads=[0.4, 0.8],
            switches=["sprinklers", "ufs"], num_slots=400,
            engine="vectorized",
        )
        baseline = delay_vs_load_sweep(**kwargs)
        with telemetry.scope():
            observed = delay_vs_load_sweep(**kwargs)
        assert len(baseline) == len(observed)
        for base, obs in zip(baseline, observed):
            base_dict, obs_dict = base.to_dict(), obs.to_dict()
            assert obs_dict["extras"].pop("telemetry", None) is not None
            assert base_dict == obs_dict
            # Disabled runs must not carry the reserved extras key at all.
            assert "telemetry" not in base.extras

    def test_store_keys_unchanged(self):
        params = single_run_params(
            "sprinklers", uniform_matrix(4, 0.5), 400, 0, 0.5,
            0.1, False, "vectorized", None,
        )
        key_disabled = cache_key(params)
        with telemetry.scope():
            params_enabled = single_run_params(
                "sprinklers", uniform_matrix(4, 0.5), 400, 0, 0.5,
                0.1, False, "vectorized", None,
            )
        assert cache_key(params_enabled) == key_disabled

    def test_hits_serve_identical_results_under_telemetry(self, tmp_path):
        store = ExperimentStore(tmp_path)
        cold = run_single(
            "ufs", uniform_matrix(4, 0.5), 300, load_label=0.5, store=store
        )
        with telemetry.scope():
            warm = run_single(
                "ufs", uniform_matrix(4, 0.5), 300, load_label=0.5,
                store=store,
            )
        assert store.hits == 1
        warm_dict = warm.to_dict()
        warm_dict["extras"].pop("telemetry", None)
        assert warm_dict == cold.to_dict()

    def test_env_enabled_subprocess_bit_identical(self):
        """REPRO_TELEMETRY=1 vs unset across real process boundaries."""
        script = (
            "import json, sys\n"
            "from repro.sim.experiment import run_single\n"
            "from repro.traffic.matrices import uniform_matrix\n"
            "r = run_single('sprinklers', uniform_matrix(4, 0.6), 500,\n"
            "               seed=3, engine='vectorized')\n"
            "d = r.to_dict()\n"
            "d['extras'].pop('telemetry', None)\n"
            "print(json.dumps(d, sort_keys=True))\n"
        )

        def run(env_value):
            env = dict(os.environ)
            env.pop("REPRO_TELEMETRY", None)
            if env_value is not None:
                env["REPRO_TELEMETRY"] = env_value
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            return proc.stdout

        assert run("1") == run(None)


class TestCli:
    def test_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(
            [
                "fabrics", "run", "--fabric", "leaf-spine", "--n", "8",
                "--slots", "2000", "--no-store", "--trace", str(path),
            ]
        )
        assert code == 0
        trace = read_trace(path)
        assert validate_nesting(trace["spans"]) == []
        assert {s["name"] for s in trace["spans"]} >= {"run.fabric"}
        assert not telemetry.enabled()  # scope restored after the command

    def test_telemetry_summarize_and_check(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(
            [
                "scenarios", "run", "--scenario", "paper-uniform",
                "--n", "4", "--slots", "400", "--no-store",
                "--engine", "vectorized", "--trace", str(path),
            ]
        )
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run.single" in out
        assert "replay.monolithic" in out
        assert "metrics" in out
        assert main(["telemetry", "check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_telemetry_check_fails_on_broken_trace(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            json.dumps({"record": "meta", "format": 1, "spans": 1}) + "\n"
            + json.dumps(
                {
                    "record": "span", "id": 0, "parent": 17, "depth": 3,
                    "name": "orphan", "start_s": 0.0, "dur_s": 1.0,
                    "attrs": {},
                }
            )
            + "\n"
        )
        assert main(["telemetry", "check", str(path)]) == 1
        assert "problem" in capsys.readouterr().out

    def test_telemetry_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            main(
                [
                    "scenarios", "run", "--scenario", "paper-uniform",
                    "--n", "4", "--slots", "300", "--no-store",
                    "--trace", str(path),
                ]
            )
        capsys.readouterr()
        assert main(["telemetry", "diff", str(a), str(b)]) == 0
        assert "run.single" in capsys.readouterr().out

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "bounds", "--rho", "0.9", "--n", "64"]) == 0
