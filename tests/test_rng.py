"""Unit tests for seeded randomness management (sim/rng.py)."""

import pytest

from repro.sim.rng import RngRegistry, derive_seed, spawn_generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "traffic") == derive_seed(7, "traffic")

    def test_names_distinct(self):
        assert derive_seed(7, "traffic") != derive_seed(7, "placement")

    def test_masters_distinct(self):
        assert derive_seed(7, "traffic") != derive_seed(8, "traffic")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "x")


class TestSpawnGenerator:
    def test_streams_reproducible(self):
        a = spawn_generator(3, "s").random(5)
        b = spawn_generator(3, "s").random(5)
        assert (a == b).all()

    def test_streams_independent_names(self):
        a = spawn_generator(3, "s1").random(5)
        b = spawn_generator(3, "s2").random(5)
        assert (a != b).any()


class TestRegistry:
    def test_memoizes(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_reset_restarts_sequences(self):
        reg = RngRegistry(1)
        first = reg.stream("a").random()
        reg.reset()
        assert reg.stream("a").random() == first

    def test_names_listed_sorted(self):
        reg = RngRegistry(1)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]

    def test_negative_master_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-2)
