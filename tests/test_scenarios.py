"""The scenario subsystem: registry, spec I/O, builders, engine parity.

The load-bearing guarantee is the parametrized parity test: *every*
registered scenario — stationary, bursty, load-scheduled, drifting —
produces bit-identical seeded metrics on the object and vectorized
engines, because both traffic generators consume the RNG in lock-step
(one uniform per (slot, input) for arrivals regardless of schedule, one
destination draw per arrival through a shared sampler).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    apply_overrides,
    build_batch_traffic,
    build_traffic,
    effective_matrix,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    make_schedule,
    register_scenario,
    resolve_scenario,
    save_scenario_file,
)
from repro.scenarios.schedules import (
    ConstantSchedule,
    RampSchedule,
    SineSchedule,
    StepSchedule,
)
from repro.sim.experiment import run_single
from repro.traffic.arrivals import ModulatedBernoulliArrivals
from repro.traffic.generator import DriftingDestinations


def assert_results_identical(a, b):
    """Field-for-field equality, NaN-aware (keep_samples=False figures)."""
    da, db = a.to_dict(), b.to_dict()
    assert set(da) == set(db)
    for key in da:
        x, y = da[key], db[key]
        if isinstance(x, float) and isinstance(y, float):
            assert x == y or (math.isnan(x) and math.isnan(y)), key
        else:
            assert x == y, key


class TestRegistry:
    def test_at_least_eight_scenarios(self):
        assert len(list_scenarios()) >= 8

    def test_paper_patterns_present(self):
        names = list_scenarios()
        assert "paper-uniform" in names
        assert "quasi-diagonal" in names

    def test_every_scenario_documented(self):
        for name in list_scenarios():
            spec = get_scenario(name)
            # The description is the registry's documentation: it must
            # say something substantive about the stress applied.
            assert len(spec.description) > 60, name

    def test_get_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("not-a-scenario")

    def test_register_refuses_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(SCENARIOS["paper-uniform"])

    def test_resolve_accepts_spec_dict_and_name(self):
        spec = get_scenario("hotspot-4x")
        assert resolve_scenario(spec) is spec
        assert resolve_scenario("hotspot-4x") is spec
        assert resolve_scenario(spec.to_dict()) == spec


class TestSpecSerialization:
    def test_dict_round_trip(self):
        for name in list_scenarios():
            spec = get_scenario(name)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = get_scenario("mmpp-bursty")
        path = save_scenario_file(spec, tmp_path / "bursty.json")
        assert load_scenario_file(path) == spec
        assert resolve_scenario(str(path)) == spec

    def test_toml_file(self, tmp_path):
        path = tmp_path / "custom.toml"
        path.write_text(
            'name = "custom-sine"\n'
            'description = "a TOML-defined scenario"\n'
            "[matrix]\n"
            'family = "hotspot"\n'
            "weight = 2.0\n"
            "[schedule]\n"
            'kind = "sine"\n'
            "depth = 0.5\n"
            "period = 512\n"
        )
        spec = load_scenario_file(path)
        assert spec.name == "custom-sine"
        assert spec.matrix["weight"] == 2.0
        assert spec.schedule["kind"] == "sine"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "burstiness": {}})

    def test_unknown_family_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown matrix family"):
            ScenarioSpec(name="bad", matrix={"family": "fractal"})

    def test_onoff_plus_schedule_rejected(self):
        # The burst process owns the rate dynamics; a schedule on top
        # would be silently ignored, so the spec refuses the combination.
        with pytest.raises(ValueError, match="load schedule"):
            ScenarioSpec(
                name="bad-combo",
                arrivals={"kind": "onoff"},
                schedule={"kind": "ramp", "start": 0.1, "end": 1.0},
            )

    def test_apply_overrides(self):
        spec = get_scenario("load-sine")
        out = apply_overrides(
            spec, ["schedule.depth=0.8", "name=load-sine-deep"]
        )
        assert out.schedule["depth"] == 0.8
        assert out.name == "load-sine-deep"
        # the original registry entry is untouched
        assert get_scenario("load-sine").schedule["depth"] == 0.6

    def test_apply_overrides_bad_assignment(self):
        with pytest.raises(ValueError, match="not key=value"):
            apply_overrides(get_scenario("load-sine"), ["depth"])


class TestSchedules:
    def test_constant(self):
        assert np.all(ConstantSchedule(0.5).multipliers(10, 4) == 0.5)

    def test_ramp_reaches_end_and_holds(self):
        sched = RampSchedule(0.2, 1.0, horizon=100)
        mult = sched.multipliers(0, 150)
        assert mult[0] == pytest.approx(0.2)
        assert mult[100] == pytest.approx(1.0)
        assert mult[149] == pytest.approx(1.0)
        assert np.all(np.diff(mult) >= 0)

    def test_sine_bounds(self):
        mult = SineSchedule(0.6, 128).multipliers(0, 1000)
        assert mult.min() >= 0.4 - 1e-12
        assert mult.max() <= 1.0 + 1e-12

    def test_steps(self):
        sched = StepSchedule([0.2, 1.0], horizon=10)
        mult = sched.multipliers(0, 12)
        assert np.all(mult[:5] == 0.2)
        assert np.all(mult[5:] == 1.0)

    def test_make_schedule_defaults_horizon(self):
        sched = make_schedule({"kind": "ramp", "start": 0.0, "end": 1.0}, 500)
        assert sched.horizon == 500

    def test_make_schedule_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            make_schedule({"kind": "brownian"}, 100)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            ConstantSchedule(1.5)

    def test_modulated_arrivals_rate_follows_schedule(self):
        rng = np.random.default_rng(0)
        arr = ModulatedBernoulliArrivals(
            np.full(4, 0.8), StepSchedule([0.25, 1.0], horizon=20_000), rng
        )
        slots, _ = arr.chunk(0, 20_000)
        first = int(np.sum(slots < 10_000))
        second = int(np.sum(slots >= 10_000))
        # rates 0.2 vs 0.8 per input: the busy half sees ~4x the arrivals
        assert second > 2.5 * first

    def test_modulated_arrivals_validates_schedule_range(self):
        class Bad:
            def multipliers(self, start, num):
                return np.full(num, 2.0)

        arr = ModulatedBernoulliArrivals(
            np.full(2, 0.5), Bad(), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="multipliers"):
            arr.chunk(0, 8)


class TestDriftingDestinations:
    def test_drift_moves_the_mix(self):
        n = 4
        start = np.full((n, n), 0.25 * 0.8 / 1.0)
        end = np.zeros((n, n))
        np.fill_diagonal(end, 0.8)
        sampler = DriftingDestinations(start, end, horizon=10_000)
        rng = np.random.default_rng(1)
        early = sampler.draw(
            rng, np.zeros(2000, dtype=np.int64), np.zeros(2000, dtype=np.int64), n
        )
        late = sampler.draw(
            rng,
            np.full(2000, 9_999, dtype=np.int64),
            np.zeros(2000, dtype=np.int64),
            n,
        )
        # input 0: early ~ uniform over 4 outputs, late ~ all to output 0
        assert np.mean(early == 0) < 0.4
        assert np.mean(late == 0) > 0.95

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal shapes"):
            DriftingDestinations(np.zeros((2, 2)), np.zeros((3, 3)), 10)


class TestBuilderParity:
    """Object and batch generators emit the same seeded stream."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_stream_parity(self, name):
        spec = get_scenario(name)
        n, load, slots, seed = 8, 0.7, 1200, 3
        gen = build_traffic(spec, n, load, seed, slots)
        events = [
            (slot, p.input_port, p.output_port, p.seq)
            for slot, packets in gen.slots(slots)
            for p in packets
        ]
        batch = build_batch_traffic(spec, n, load, seed, slots).draw(slots)
        got = list(
            zip(
                batch.slots.tolist(),
                batch.inputs.tolist(),
                batch.outputs.tolist(),
                batch.seqs.tolist(),
            )
        )
        assert events == got

    def test_onoff_respects_skewed_row_rates(self):
        """Bursty arrivals on a skewed matrix keep per-input mean rates.

        A shared peak rate would drive every input at the heaviest row's
        rate and oversubscribe the light rows' outputs; per-input peaks
        keep each input's long-run rate at its row sum, preserving the
        effective matrix's admissibility.
        """
        spec = ScenarioSpec(
            name="skew-burst",
            matrix={"family": "lognormal", "sigma": 1.0, "seed": 7},
            arrivals={"kind": "onoff", "mean_on": 16.0},
        )
        n, load, slots = 8, 0.9, 60_000
        gen = build_batch_traffic(spec, n, load, 0, slots)
        batch = gen.draw(slots)
        target = effective_matrix(spec, n, load).sum(axis=1)
        counts = np.bincount(batch.inputs, minlength=n)
        measured = counts / slots
        # Rates differ across inputs (skew survives) and each tracks its
        # own row sum, not the hottest row's.
        assert target.max() / target.min() > 1.5
        assert np.allclose(measured, target, atol=0.05)

    def test_skewed_onoff_engine_parity(self):
        spec = ScenarioSpec(
            name="skew-burst",
            matrix={"family": "lognormal", "sigma": 1.0, "seed": 7},
            arrivals={"kind": "onoff"},
        )
        obj = run_single(
            "sprinklers", scenario=spec, n=8, load=0.7, num_slots=1500,
            seed=2, engine="object",
        )
        fast = run_single(
            "sprinklers", scenario=spec, n=8, load=0.7, num_slots=1500,
            seed=2, engine="vectorized",
        )
        assert_results_identical(obj, fast)

    def test_zipf_flows_labels_packets(self):
        gen = build_traffic(get_scenario("zipf-flows"), 4, 0.8, 0, 200)
        flow_ids = [
            p.flow_id for _, packets in gen.slots(200) for p in packets
        ]
        assert flow_ids and all(f is not None for f in flow_ids)
        assert len(set(flow_ids)) > 1


class TestEngineParity:
    """Acceptance bar: every scenario, both engines, identical metrics."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("switch", ["sprinklers", "load-balanced"])
    def test_scenario_engine_parity(self, name, switch):
        results = {}
        for engine in ("object", "vectorized"):
            results[engine] = run_single(
                switch,
                scenario=name,
                n=8,
                load=0.7,
                num_slots=1500,
                seed=4,
                engine=engine,
            )
        assert_results_identical(results["object"], results["vectorized"])

    def test_incast_concentrates_on_one_output(self):
        """The incast spec must actually be a fan-in: the hot output draws
        several times a uniform share of every input's traffic, under
        on/off burst arrivals (the parametrized parity tests above already
        pin object/vectorized equality for it)."""
        spec = get_scenario("incast")
        assert spec.arrivals["kind"] == "onoff"
        matrix = effective_matrix(spec, 8, 0.9)
        hot = matrix[:, 0]
        rest = matrix[:, 1:]
        assert np.all(hot > 4 * rest.max(axis=1))
        # Admissible despite the fan-in: the hot column's total load <= 1.
        assert hot.sum() <= 1.0 + 1e-12

    def test_incast_parity_on_frame_switches(self):
        """PF and FOFF — the switches incast stresses hardest — must agree
        across engines on the incast workload specifically."""
        for switch in ("pf", "foff"):
            results = {
                engine: run_single(
                    switch, scenario="incast", n=8, load=0.75,
                    num_slots=1500, seed=9, engine=engine,
                )
                for engine in ("object", "vectorized")
            }
            assert_results_identical(
                results["object"], results["vectorized"]
            )
            assert results["object"].measured_packets > 0

    def test_correlated_bursts_share_one_phase(self):
        """The correlated-bursts spec must actually synchronize inputs:
        one shared modulator chain, so per-slot arrival counts swing
        between system-wide silence and near-full fan-in — far burstier
        in aggregate than independent per-input chains."""
        from repro.scenarios.build import build_batch_traffic
        from repro.traffic.arrivals import OnOffArrivals

        spec = get_scenario("correlated-bursts")
        assert spec.arrivals["phases"] == 1
        n, slots = 8, 4000
        gen = build_batch_traffic(spec, n, 0.7, 3, slots)
        assert isinstance(gen.arrivals, OnOffArrivals)
        assert gen.arrivals.phases == 1
        batch = gen.draw(slots)
        per_slot = np.bincount(batch.slots, minlength=slots)
        independent = build_batch_traffic(
            get_scenario("mmpp-bursty"), n, 0.7, 3, slots
        ).draw(slots)
        per_slot_ind = np.bincount(independent.slots, minlength=slots)
        # Shared phase => whole-switch OFF spans (many empty slots) and
        # higher variance of the per-slot aggregate than independent
        # chains at a comparable mean rate.
        assert np.mean(per_slot == 0) > 2 * np.mean(per_slot_ind == 0)
        assert per_slot.var() > per_slot_ind.var()

    def test_correlated_bursts_parity_on_frame_switches(self):
        """Like incast: the frame-at-a-time switches must agree across
        engines on the correlated-burst workload specifically (the
        shared-phase modulator rides the same RNG lock-step)."""
        for switch in ("pf", "foff"):
            results = {
                engine: run_single(
                    switch, scenario="correlated-bursts", n=8, load=0.75,
                    num_slots=1500, seed=9, engine=engine,
                )
                for engine in ("object", "vectorized")
            }
            assert_results_identical(
                results["object"], results["vectorized"]
            )
            assert results["object"].measured_packets > 0

    def test_onoff_phases_clamped_to_n(self):
        """A multi-phase spec still runs at tiny N (phases clamp to n)."""
        from repro.scenarios.build import build_batch_traffic

        spec = ScenarioSpec(
            name="four-phase",
            arrivals={"kind": "onoff", "phases": 4},
        )
        gen = build_batch_traffic(spec, 2, 0.5, 0, 200)
        assert gen.arrivals.phases == 2

    def test_ordering_preserved_under_stress(self):
        # Sprinklers' core claim must survive the nastiest scenarios.
        for name in ("mmpp-bursty", "matrix-drift", "adversarial-stride"):
            result = run_single(
                "sprinklers",
                scenario=name,
                n=8,
                load=0.85,
                num_slots=2500,
                seed=1,
                engine="vectorized",
            )
            assert result.is_ordered, name
            assert result.measured_packets > 0, name


class TestRunSingleScenarioApi:
    def test_requires_n_and_load(self):
        with pytest.raises(ValueError, match="require n and load"):
            run_single("ufs", scenario="paper-uniform", num_slots=100)

    def test_matrix_and_scenario_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_single(
                "ufs",
                np.full((2, 2), 0.2),
                100,
                scenario="paper-uniform",
                n=2,
                load=0.5,
            )

    def test_load_label_defaults_to_load(self):
        result = run_single(
            "ufs", scenario="paper-uniform", n=4, load=0.6, num_slots=300
        )
        assert result.load == 0.6

    def test_spec_file_runs(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"name": "file-spec", "matrix": {"family": "uniform"}})
        )
        result = run_single(
            "output-queued",
            scenario=str(path),
            n=4,
            load=0.5,
            num_slots=300,
            engine="vectorized",
        )
        assert result.measured_packets > 0


class TestSweepPatternResolution:
    def test_unknown_name_lists_patterns_and_scenarios(self):
        from repro.sim.experiment import delay_vs_load_sweep

        with pytest.raises(ValueError, match="unknown pattern") as exc:
            delay_vs_load_sweep("no-such-thing", n=4, loads=[0.5], num_slots=50)
        assert "uniform" in str(exc.value)
        assert "mmpp-bursty" in str(exc.value)

    def test_spec_file_errors_propagate(self, tmp_path):
        # A typo'd field inside an existing spec file must surface its
        # own actionable message, not a generic "unknown pattern".
        from repro.sim.experiment import delay_vs_load_sweep

        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"name": "x", "matrx": {}}))
        with pytest.raises(ValueError, match="unknown scenario fields"):
            delay_vs_load_sweep(str(path), n=4, loads=[0.5], num_slots=50)

    def test_sweep_accepts_spec_object(self):
        from repro.sim.experiment import delay_vs_load_sweep

        results = delay_vs_load_sweep(
            get_scenario("hotspot-4x"),
            n=4,
            loads=[0.5],
            num_slots=200,
            switches=["ufs"],
            engine="vectorized",
        )
        assert results[0].measured_packets > 0
