"""Shared fixtures for the test suite.

Plain helper functions live in :mod:`tests.helpers`; importing them from a
conftest by bare name is exactly the pattern that once let
``benchmarks/conftest.py`` shadow this file and knock six modules out of
collection.  Only pytest fixtures belong here.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic statistical tests."""
    return np.random.default_rng(12345)
