"""Tests for the Theorem 2 / Table 1 machinery (analysis/chernoff.py)."""

import math

import numpy as np
import pytest

from repro.analysis.chernoff import (
    PAPER_TABLE1,
    h_function,
    log10_overload_probability_bound,
    overload_probability_bound,
    p_star,
    switch_wide_bound,
    table1_rows,
)
from repro.analysis.stability import theorem1_threshold


class TestHFunction:
    def test_degenerate_p(self):
        assert h_function(0.0, 3.0) == 1.0
        assert h_function(1.0, 3.0) == 1.0

    def test_zero_argument(self):
        assert h_function(0.5, 0.0) == 1.0

    def test_is_centered_bernoulli_mgf(self):
        # h(p, a) = E[exp(a (B - p))] for B ~ Bernoulli(p).
        p, a = 0.3, 1.7
        direct = p * math.exp(a * (1 - p)) + (1 - p) * math.exp(-a * p)
        assert h_function(p, a) == pytest.approx(direct)

    def test_p_star_maximizes(self):
        for a in (0.05, 0.5, 1.0, 3.0):
            best = h_function(p_star(a), a)
            for p in np.linspace(0.0, 1.0, 201):
                assert h_function(float(p), a) <= best + 1e-12

    def test_p_star_small_a_limit(self):
        assert p_star(1e-10) == pytest.approx(0.5, abs=1e-6)

    def test_p_star_decreases(self):
        values = [p_star(a) for a in (0.01, 0.1, 1.0, 5.0, 20.0)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            h_function(1.5, 1.0)
        with pytest.raises(ValueError):
            p_star(-1.0)


class TestOverloadBound:
    def test_zero_below_theorem1_threshold(self):
        for n in (64, 1024):
            assert overload_probability_bound(0.5, n) == 0.0
            just_below = theorem1_threshold(n) - 1e-6
            assert overload_probability_bound(just_below, n) == 0.0

    def test_reproduces_paper_table1_where_not_floored(self):
        # The paper's own numbers bottom out around 1e-29 (their
        # optimizer's numeric floor); compare where they are clearly above
        # it.  EXPERIMENTS.md discusses the floored cells.
        for (rho, n), paper_value in PAPER_TABLE1.items():
            if paper_value < 1e-25:
                continue
            ours = overload_probability_bound(rho, n)
            assert ours == pytest.approx(paper_value, rel=0.1), (rho, n)

    def test_monotone_in_rho(self):
        values = [overload_probability_bound(rho, 1024) for rho in
                  (0.90, 0.92, 0.94, 0.96)]
        assert values == sorted(values)

    def test_decreasing_in_n(self):
        for rho in (0.92, 0.95):
            v1 = overload_probability_bound(rho, 1024)
            v2 = overload_probability_bound(rho, 2048)
            v3 = overload_probability_bound(rho, 4096)
            assert v1 > v2 > v3

    def test_bounded_by_one(self):
        assert overload_probability_bound(0.999, 4) <= 1.0

    def test_log10_consistent_with_linear(self):
        rho, n = 0.93, 1024
        linear = overload_probability_bound(rho, n)
        log10 = log10_overload_probability_bound(rho, n)
        assert log10 == pytest.approx(math.log10(linear), abs=1e-6)

    def test_log10_below_threshold_is_minus_inf(self):
        assert log10_overload_probability_bound(0.3, 1024) == -math.inf

    def test_switch_wide_union(self):
        rho, n = 0.93, 2048
        per_queue = overload_probability_bound(rho, n)
        assert switch_wide_bound(rho, n) == pytest.approx(2 * n * n * per_queue)

    def test_validation(self):
        with pytest.raises(ValueError):
            overload_probability_bound(1.5, 1024)
        with pytest.raises(ValueError):
            overload_probability_bound(0.9, 1000)


class TestTable1Rows:
    def test_default_shape(self):
        rows = table1_rows()
        assert len(rows) == 8
        assert set(rows[0].keys()) == {"rho", "N=1024", "N=2048", "N=4096"}

    def test_custom_grid(self):
        rows = table1_rows(rhos=(0.93,), ns=(64, 128))
        assert len(rows) == 1
        assert "N=64" in rows[0] and "N=128" in rows[0]
