"""The legacy switch-resolution names survive as registry-backed shims.

ISSUE 3 keeps ``SWITCH_BUILDERS``, ``build_switch``,
``supports_fast_engine`` (and ``FAST_ENGINE_SWITCHES``) importable so
existing callers and notebooks keep working, but each use must (a) warn
with ``DeprecationWarning`` and (b) return exactly what the switch-model
registry would — no second source of truth.  Importing the packages
themselves must stay silent: only *using* a deprecated name warns.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import pytest

from repro import models
from repro.traffic.matrices import uniform_matrix


class TestExperimentShims:
    def test_switch_builders_warns_and_matches_registry(self):
        from repro.sim import experiment

        with pytest.warns(DeprecationWarning, match="SWITCH_BUILDERS"):
            builders = experiment.SWITCH_BUILDERS
        assert set(builders) == set(models.available())
        # The mapped builders are the registry's own callables.
        for name, builder in builders.items():
            assert builder is models.get(name).builder

    def test_from_import_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro.sim.experiment import SWITCH_BUILDERS  # noqa: F401

    def test_build_switch_warns_and_builds(self):
        from repro.sim.experiment import build_switch

        with pytest.warns(DeprecationWarning, match="build_switch"):
            switch = build_switch("ufs", 8, uniform_matrix(8, 0.5), 0)
        assert switch.n == 8
        assert switch.name == "ufs"

    def test_build_switch_unknown_name_still_raises(self):
        from repro.sim.experiment import build_switch

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown switch"):
                build_switch("bogus", 8, uniform_matrix(8, 0.5), 0)


class TestFastEngineShims:
    def test_supports_fast_engine_warns_and_matches_registry(self):
        from repro.sim.fast_engine import supports_fast_engine

        vectorized = set(models.available(engine="vectorized"))
        for name in models.available():
            with pytest.warns(DeprecationWarning, match="supports_fast_engine"):
                supported = supports_fast_engine(name)
            assert supported == (name in vectorized), name

    def test_supports_fast_engine_unknown_name_is_false(self):
        from repro.sim.fast_engine import supports_fast_engine

        with pytest.warns(DeprecationWarning):
            assert supports_fast_engine("no-such-switch") is False

    def test_fast_engine_switches_warns_and_matches_registry(self):
        from repro.sim import fast_engine

        with pytest.warns(DeprecationWarning, match="FAST_ENGINE_SWITCHES"):
            names = fast_engine.FAST_ENGINE_SWITCHES
        assert tuple(names) == models.available(engine="vectorized")
        # The newly vectorized switches are visible through the old name.
        assert "pf" in names and "foff" in names

    def test_repro_sim_reexports_resolve(self):
        """The historical ``repro.sim`` re-exports resolve lazily."""
        import repro.sim as sim

        with pytest.warns(DeprecationWarning):
            assert tuple(sim.FAST_ENGINE_SWITCHES) == models.available(
                engine="vectorized"
            )
        assert callable(sim.build_switch)
        assert callable(sim.supports_fast_engine)


class TestImportHygiene:
    def test_importing_repro_emits_no_deprecation_warnings(self):
        """Merely importing the library (or repro.sim) must stay silent;
        run in a subprocess so this module's own imports don't pollute."""
        code = (
            "import warnings\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('error', DeprecationWarning)\n"
            "    import repro\n"
            "    import repro.sim\n"
            "    import repro.sim.experiment\n"
            "    import repro.sim.fast_engine\n"
            "print('clean')\n"
        )
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env,
        )
        assert out.returncode == 0, out.stderr
        assert "clean" in out.stdout

    def test_no_warning_from_registry_api(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            models.available(engine="vectorized")
            models.get("pf")
            models.build("output-queued", 4, uniform_matrix(4, 0.5), 0)
