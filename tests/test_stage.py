"""The Stage protocol adapters (sim/stage.py): window contract,
engine parity, and validation."""

import numpy as np
import pytest

from repro import models
from repro.sim.rng import derive_seed
from repro.sim.stage import KernelStage, ObjectStage
from repro.traffic.batch import BatchTrafficGenerator
from repro.traffic.matrices import uniform_matrix


def _traffic(matrix, seed=0):
    return BatchTrafficGenerator(
        matrix, np.random.default_rng(derive_seed(seed, "traffic"))
    )


def _drain(stage, traffic, num_slots, window_slots=None):
    """Run a stage over the full horizon; departures sorted by (voq, seq)."""
    parts = []
    if window_slots is None:
        dep, extras = stage.finish(traffic.draw(num_slots))
        parts.append(dep)
    else:
        for window in traffic.draw_chunks(num_slots, window_slots):
            parts.append(stage.feed(window))
        dep, extras = stage.finish()
        parts.append(dep)
    voq = np.concatenate([p.voq for p in parts])
    seq = np.concatenate([p.seq for p in parts])
    arrival = np.concatenate([p.arrival for p in parts])
    departure = np.concatenate([p.departure for p in parts])
    order = np.lexsort((seq, voq))
    return (
        voq[order], seq[order], arrival[order], departure[order], extras
    )


def _object_stage(name, matrix, seed, num_slots):
    model = models.get(name)
    n = matrix.shape[0]
    switch = model.build(n, matrix, seed)
    return ObjectStage(switch, num_slots)


def _kernel_stage(name, matrix, seed, num_slots):
    return KernelStage(models.get(name), matrix, seed, num_slots)


class TestKernelStage:
    def test_rejects_model_without_stream_kernel(self):
        with pytest.raises(ValueError, match="no stream kernel"):
            KernelStage(models.get("cms"), uniform_matrix(4, 0.5), 0, 100)

    @pytest.mark.parametrize("name", ["sprinklers", "output-queued", "foff"])
    def test_windowed_equals_monolithic(self, name):
        matrix = uniform_matrix(8, 0.8)
        mono = _drain(
            _kernel_stage(name, matrix, 3, 1000),
            _traffic(matrix, 3), 1000,
        )
        windowed = _drain(
            _kernel_stage(name, matrix, 3, 1000),
            _traffic(matrix, 3), 1000, window_slots=128,
        )
        for a, b in zip(mono[:4], windowed[:4]):
            np.testing.assert_array_equal(a, b)

    def test_departures_finalized_before_window_end(self):
        matrix = uniform_matrix(8, 0.7)
        stage = _kernel_stage("sprinklers", matrix, 0, 1000)
        traffic = _traffic(matrix)
        for window in traffic.draw_chunks(1000, 100):
            dep = stage.feed(window)
            if len(dep.departure):
                assert dep.departure.max() < window.end_slot


class TestObjectStage:
    @pytest.mark.parametrize("name", ["sprinklers", "output-queued", "foff"])
    def test_matches_kernel_stage(self, name):
        # The two adapters are the two engines; same windows, same
        # finalized (voq, seq, arrival, departure) multiset.
        matrix = uniform_matrix(8, 0.8)
        obj = _drain(
            _object_stage(name, matrix, 3, 800),
            _traffic(matrix, 3), 800, window_slots=150,
        )
        ker = _drain(
            _kernel_stage(name, matrix, 3, 800),
            _traffic(matrix, 3), 800, window_slots=150,
        )
        for a, b in zip(obj[:4], ker[:4]):
            np.testing.assert_array_equal(a, b)

    def test_rejects_nonconsecutive_windows(self):
        matrix = uniform_matrix(4, 0.5)
        stage = _object_stage("output-queued", matrix, 0, 400)
        windows = list(_traffic(matrix).draw_chunks(400, 100))
        stage.feed(windows[0])
        with pytest.raises(ValueError, match="must be consecutive"):
            stage.feed(windows[2])  # skipped windows[1]

    def test_rejects_size_mismatch(self):
        stage = _object_stage("output-queued", uniform_matrix(4, 0.5), 0, 200)
        window = _traffic(uniform_matrix(8, 0.5)).draw(200)
        with pytest.raises(ValueError, match="does not match stage size"):
            stage.feed(window)

    def test_rejects_nonpositive_horizon(self):
        model = models.get("output-queued")
        matrix = uniform_matrix(4, 0.5)
        switch = model.build(4, matrix, 0)
        with pytest.raises(ValueError, match="must be positive"):
            ObjectStage(switch, 0)

    def test_wire_is_global_rank(self):
        matrix = uniform_matrix(4, 0.6)
        stage = _object_stage("output-queued", matrix, 1, 300)
        traffic = _traffic(matrix, 1)
        seen = 0
        for window in traffic.draw_chunks(300, 60):
            dep = stage.feed(window)
            assert dep.wire_is_rank
            if len(dep.wire):
                assert dep.wire[0] == seen
                np.testing.assert_array_equal(
                    dep.wire, np.arange(seen, seen + len(dep.wire))
                )
                seen += len(dep.wire)

    def test_finish_drains_everything(self):
        # Output-queued work-conserving service: every injected packet
        # departs within the drain limit.
        matrix = uniform_matrix(4, 0.6)
        traffic = _traffic(matrix, 2)
        stage = _object_stage("output-queued", matrix, 2, 500)
        voq, seq, arrival, departure, _ = _drain(stage, traffic, 500)
        assert len(voq) == traffic.generated
