"""Tests for the experiment layer (sim/experiment.py)."""

import pytest

from repro import models
from repro.sim.experiment import (
    PAPER_SWITCHES,
    TRAFFIC_PATTERNS,
    delay_vs_load_sweep,
    run_single,
)
from repro.traffic.matrices import uniform_matrix


class TestRegistry:
    def test_paper_switches_all_registered(self):
        for name in PAPER_SWITCHES:
            assert name in models.available()

    def test_run_single_unknown_switch_rejected(self):
        with pytest.raises(ValueError, match="unknown switch"):
            run_single("bogus", uniform_matrix(8, 0.5), 100)

    def test_patterns(self):
        assert set(TRAFFIC_PATTERNS) == {"uniform", "diagonal"}


class TestRunSingle:
    def test_produces_result(self):
        result = run_single(
            "sprinklers", uniform_matrix(8, 0.6), 1500, seed=1, load_label=0.6
        )
        assert result.switch_name == "sprinklers"
        assert result.load == 0.6
        assert result.is_ordered

    def test_deterministic(self):
        a = run_single("ufs", uniform_matrix(8, 0.5), 1200, seed=4)
        b = run_single("ufs", uniform_matrix(8, 0.5), 1200, seed=4)
        assert a.mean_delay == b.mean_delay

    def test_seeds_differ(self):
        a = run_single("load-balanced", uniform_matrix(8, 0.5), 1500, seed=1)
        b = run_single("load-balanced", uniform_matrix(8, 0.5), 1500, seed=2)
        assert a.mean_delay != b.mean_delay


class TestSweep:
    def test_grid_shape(self):
        results = delay_vs_load_sweep(
            "uniform",
            n=8,
            loads=(0.3, 0.6),
            num_slots=800,
            switches=("load-balanced", "sprinklers"),
        )
        assert len(results) == 4
        # Registry keys build the switches; results carry the switches'
        # own names ("load-balanced" builds the "baseline-lb" switch).
        assert {r.switch_name for r in results} == {"baseline-lb", "sprinklers"}
        assert {r.load for r in results} == {0.3, 0.6}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            delay_vs_load_sweep("bogus", n=8)

    def test_default_switches_are_papers(self):
        results = delay_vs_load_sweep(
            "uniform", n=4, loads=(0.5,), num_slots=400
        )
        assert [r.switch_name for r in results] == [
            "baseline-lb", "ufs", "foff", "pf", "sprinklers",
        ]
