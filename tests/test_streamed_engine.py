"""Streamed-replay equivalence: windowed/multi-seed engine vs monolithic.

The windowed replay (``run_single_fast(..., window_slots=W)``) claims to
reproduce the monolithic vectorized replay *bit-identically* — same
departure slots, same extras, same retained delay samples in the same
observation order — while materializing only O(W) arrival slots at a
time.  Multi-seed batching (``run_replications_fast`` /
``replicate(batch_seeds=True)``) claims the same per seed while stacking
all seeds into one kernel pass.  These tests pin both claims across every
streaming switch, switch sizes, workloads, and window sizes (including
windows that do not divide the run and windows larger than the run).

The monolithic vectorized path is itself pinned against the object
engine in ``tests/test_fast_engine.py``, so equality here chains all the
way back to the per-packet oracle.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import models
from repro.sim.experiment import run_single
from repro.sim.fast_engine import run_replications_fast, run_single_fast
from repro.sim.replication import replicate
from repro.traffic.batch import BatchTrafficGenerator
from repro.traffic.matrices import diagonal_matrix, uniform_matrix

STREAMING_SWITCHES = list(
    models.available(engine="vectorized", capability="streaming")
)
SEED_BATCHED_SWITCHES = list(
    models.available(engine="vectorized", capability="seed-batched")
)

#: (name, kwargs-for-run_single) — two §6 matrix families plus two
#: registered scenarios (one bursty: the OnOff process carries Markov
#: state across windows; one drifting hotspot).
WORKLOADS = {
    "uniform": dict(load_label=0.85),
    "diagonal": dict(load_label=0.6),
    "mmpp-bursty": dict(scenario="mmpp-bursty", load=0.8),
    "incast": dict(scenario="incast", load=0.75),
}
SLOTS = 1200
WINDOWS = [97, 400]


def _run(switch, workload, n, seed, window_slots=None):
    kw = WORKLOADS[workload]
    if "scenario" in kw:
        return run_single(
            switch,
            scenario=kw["scenario"],
            n=n,
            load=kw["load"],
            num_slots=SLOTS,
            seed=seed,
            engine="vectorized",
            window_slots=window_slots,
        )
    matrix = (
        uniform_matrix(n, kw["load_label"])
        if workload == "uniform"
        else diagonal_matrix(n, kw["load_label"])
    )
    return run_single_fast(
        switch,
        matrix,
        SLOTS,
        seed=seed,
        load_label=kw["load_label"],
        window_slots=window_slots,
    )


_BASELINES = {}


def _baseline(switch, workload, n, seed):
    key = (switch, workload, n, seed)
    if key not in _BASELINES:
        _BASELINES[key] = _run(switch, workload, n, seed)
    return _BASELINES[key]


def assert_identical(a, b):
    """Every reported quantity — including sample order — must match."""
    assert a.switch_name == b.switch_name
    assert a.n == b.n
    assert a.slots == b.slots
    assert a.warmup == b.warmup
    assert a.injected == b.injected
    assert a.departed == b.departed
    assert a.measured_packets == b.measured_packets
    assert a.late_packets == b.late_packets
    assert a.max_displacement == b.max_displacement
    for field in ("mean_delay", "p50_delay", "p99_delay"):
        x, y = getattr(a, field), getattr(b, field)
        assert x == y or (math.isnan(x) and math.isnan(y)), field
    assert a.max_delay == b.max_delay
    assert a.extras == b.extras
    # Retained delay samples in the oracle's observation order: this is
    # what MSER truncation and the batch-means CI consume, so order (not
    # just the multiset) must survive the windowing.
    assert a._delay_samples == b._delay_samples


class TestWindowedParity:
    """The acceptance grid: every streaming switch x N x workload x W."""

    @pytest.mark.parametrize("window", WINDOWS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("n", [2, 8, 32])
    @pytest.mark.parametrize("switch", STREAMING_SWITCHES)
    def test_streamed_equals_monolithic(self, switch, n, workload, window):
        streamed = _run(switch, workload, n, seed=11, window_slots=window)
        assert_identical(_baseline(switch, workload, n, seed=11), streamed)

    def test_every_vectorized_switch_streams(self):
        """The ISSUE-4 bar: the whole vectorized roster gains a
        resumable form."""
        assert set(STREAMING_SWITCHES) == set(
            models.available(engine="vectorized")
        )

    def test_tiny_windows(self):
        """Single-digit windows exercise the carried state hardest."""
        for switch in ("sprinklers", "foff"):
            streamed = _run(switch, "uniform", 4, seed=3, window_slots=7)
            assert_identical(_baseline(switch, "uniform", 4, seed=3), streamed)

    def test_window_larger_than_run(self):
        streamed = _run("sprinklers", "uniform", 8, seed=5, window_slots=10 * SLOTS)
        assert_identical(_baseline("sprinklers", "uniform", 8, seed=5), streamed)

    def test_pf_threshold_streams(self):
        matrix = uniform_matrix(8, 0.8)
        mono = run_single_fast(
            "pf", matrix, SLOTS, seed=9, switch_params={"threshold": 2}
        )
        streamed = run_single_fast(
            "pf", matrix, SLOTS, seed=9, switch_params={"threshold": 2},
            window_slots=150,
        )
        assert_identical(mono, streamed)

    def test_streaming_requires_stream_kernel(self):
        model = models.get("sprinklers")
        stripped = models.SwitchModel(
            name="mono-only",
            builder=model.builder,
            kernel=model.kernel,
            capabilities={models.Capability.EXACT_REPLAY},
        )
        assert not stripped.capabilities >= {models.Capability.STREAMING}
        with pytest.raises(ValueError, match="streaming"):
            models.SwitchModel(
                name="bad",
                builder=model.builder,
                kernel=model.kernel,
                capabilities={models.Capability.STREAMING},
            )


class TestDrawChunks:
    """The traffic layer's windows must be RNG-identical to draw()."""

    @pytest.mark.parametrize("window", [1, 7, 100, 4096, 9999])
    def test_concatenated_windows_equal_monolithic(self, window):
        matrix = uniform_matrix(6, 0.9)
        mono = BatchTrafficGenerator(
            matrix, np.random.default_rng(42)
        ).draw(5000)
        gen = BatchTrafficGenerator(matrix, np.random.default_rng(42))
        parts = list(gen.draw_chunks(5000, window))
        assert sum(len(p) for p in parts) == len(mono)
        assert parts[0].start_slot == 0
        assert parts[-1].end_slot == 5000
        for field in ("slots", "inputs", "outputs", "seqs"):
            np.testing.assert_array_equal(
                np.concatenate([getattr(p, field) for p in parts]),
                getattr(mono, field),
            )
        assert gen.generated == len(mono)

    def test_windows_partition_by_slot(self):
        matrix = uniform_matrix(4, 0.8)
        gen = BatchTrafficGenerator(matrix, np.random.default_rng(0))
        for p in gen.draw_chunks(3000, 250):
            assert p.num_slots == 250
            assert np.all(p.slots >= p.start_slot)
            assert np.all(p.slots < p.end_slot)

    def test_bad_window_rejected(self):
        gen = BatchTrafficGenerator(
            uniform_matrix(4, 0.5), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            list(gen.draw_chunks(100, 0))


class TestSeedBatched:
    """Multi-seed stacking: per-seed results identical to one-at-a-time."""

    @pytest.mark.parametrize("switch", SEED_BATCHED_SWITCHES)
    def test_stacked_equals_sequential(self, switch):
        matrix = uniform_matrix(8, 0.85)
        seeds = list(range(4, 9))
        stacked = run_replications_fast(
            switch, matrix, SLOTS, seeds, load_label=0.85
        )
        for seed, got in zip(seeds, stacked):
            want = run_single_fast(
                switch, matrix, SLOTS, seed=seed, load_label=0.85
            )
            assert_identical(want, got)

    def test_stacked_windowed(self):
        matrix = diagonal_matrix(8, 0.6)
        seeds = [1, 2, 3]
        stacked = run_replications_fast(
            "sprinklers", matrix, SLOTS, seeds, load_label=0.6,
            window_slots=113,
        )
        for seed, got in zip(seeds, stacked):
            want = run_single_fast(
                "sprinklers", matrix, SLOTS, seed=seed, load_label=0.6
            )
            assert_identical(want, got)

    def test_frame_switches_are_seed_batched(self):
        """The ISSUE-5 bar: the array-stepped formation engine lets the
        frame-at-a-time switches stack seeds too — the whole vectorized
        roster replicates in one pass."""
        assert set(SEED_BATCHED_SWITCHES) == set(
            models.available(engine="vectorized")
        )
        assert {"pf", "foff"} <= set(SEED_BATCHED_SWITCHES)

    @pytest.mark.parametrize("switch", ["pf", "foff"])
    def test_frame_switch_stacked_windowed(self, switch):
        matrix = diagonal_matrix(8, 0.7)
        seeds = [1, 2, 3]
        stacked = run_replications_fast(
            switch, matrix, SLOTS, seeds, load_label=0.7,
            window_slots=113,
        )
        for seed, got in zip(seeds, stacked):
            want = run_single_fast(
                switch, matrix, SLOTS, seed=seed, load_label=0.7
            )
            assert_identical(want, got)

    def test_non_batched_switch_raises(self):
        model = models.get("sprinklers")
        try:
            models.register(
                models.SwitchModel(
                    name="stream-only-test",
                    builder=model.builder,
                    kernel=model.kernel,
                    stream_kernel=model.stream_kernel,
                    capabilities={models.Capability.EXACT_REPLAY},
                )
            )
            with pytest.raises(ValueError, match="seed-batched"):
                run_replications_fast(
                    "stream-only-test", uniform_matrix(4, 0.5), 500, [0, 1]
                )
        finally:
            from repro.models import registry as registry_module

            registry_module._MODELS.pop("stream-only-test", None)


class TestBatchedReplicate:
    """replicate(batch_seeds=True): same values tuple, any switch."""

    @pytest.mark.parametrize(
        "switch", models.available(engine="vectorized")
    )
    def test_values_equal_sequential(self, switch):
        matrix = uniform_matrix(8, 0.7)
        sequential = replicate(
            switch, matrix, 900, replications=4, engine="vectorized",
            load_label=0.7,
        )
        batched = replicate(
            switch, matrix, 900, replications=4, engine="vectorized",
            load_label=0.7, batch_seeds=True,
        )
        assert batched.values == sequential.values
        assert batched.mean == sequential.mean
        assert batched.half_width == sequential.half_width

    def test_scenario_values_equal(self):
        kw = dict(
            scenario="mmpp-bursty", n=8, load=0.8, num_slots=900,
            replications=3, engine="vectorized",
        )
        assert (
            replicate("sprinklers", batch_seeds=True, **kw).values
            == replicate("sprinklers", **kw).values
        )

    def test_switch_params_values_equal(self):
        matrix = uniform_matrix(8, 0.75)
        kw = dict(
            num_slots=900, replications=3, engine="vectorized",
            switch_params={"threshold": 2},
        )
        assert (
            replicate("pf", matrix, batch_seeds=True, **kw).values
            == replicate("pf", matrix, **kw).values
        )

    def test_batched_store_keys_shared_with_sequential(self, tmp_path):
        """A batched run fills the cache the sequential path hits, and
        vice versa — the keys are the per-seed run_single keys."""
        matrix = uniform_matrix(4, 0.6)
        store = str(tmp_path / "store")
        first = replicate(
            "sprinklers", matrix, 600, replications=3, engine="vectorized",
            load_label=0.6, batch_seeds=True, store=store,
        )
        # Sequential re-run must be pure cache hits (same values object).
        second = replicate(
            "sprinklers", matrix, 600, replications=3, engine="vectorized",
            load_label=0.6, store=store,
        )
        assert first.values == second.values
        from repro.store import ExperimentStore

        stats = ExperimentStore(store).stats()
        assert stats.entries == 3
        assert stats.hits >= 3

    def test_batch_seeds_requires_vectorized(self):
        with pytest.raises(ValueError, match="vectorized"):
            replicate(
                "sprinklers", uniform_matrix(4, 0.5), 500,
                replications=2, batch_seeds=True,
            )


class TestRunSingleIntegration:
    def test_window_slots_does_not_change_store_key(self, tmp_path):
        """Windowed and monolithic runs are the same experiment: one
        cache entry, hit by either."""
        store = str(tmp_path / "store")
        matrix = uniform_matrix(4, 0.7)
        a = run_single(
            "sprinklers", matrix, 800, seed=1, engine="vectorized",
            load_label=0.7, store=store,
        )
        b = run_single(
            "sprinklers", matrix, 800, seed=1, engine="vectorized",
            load_label=0.7, store=store, window_slots=100,
        )
        assert a.to_dict() == b.to_dict()
        from repro.store import ExperimentStore

        assert ExperimentStore(store).stats().entries == 1

    def test_object_engine_ignores_window_slots(self):
        matrix = uniform_matrix(4, 0.7)
        a = run_single(
            "cms", matrix, 400, seed=1, engine="vectorized", load_label=0.7
        )
        b = run_single(
            "cms", matrix, 400, seed=1, engine="vectorized", load_label=0.7,
            window_slots=50,
        )
        assert a.to_dict() == b.to_dict()

    def test_explicit_streaming_raises_without_kernel(self):
        """run_single_fast is the strict entry point: asking a
        non-streaming model to stream is an error, not a fallback."""
        model = models.get("sprinklers")
        try:
            models.register(
                models.SwitchModel(
                    name="mono-only-test",
                    builder=model.builder,
                    kernel=model.kernel,
                    capabilities={models.Capability.EXACT_REPLAY},
                )
            )
            with pytest.raises(ValueError, match="streaming"):
                run_single_fast(
                    "mono-only-test", uniform_matrix(4, 0.5), 400,
                    window_slots=100,
                )
        finally:
            from repro.models import registry as registry_module

            registry_module._MODELS.pop("mono-only-test", None)

    def test_delay_ci_identical_after_windowing(self):
        """The order-sensitive downstream statistic agrees end to end."""
        matrix = uniform_matrix(8, 0.85)
        mono = run_single_fast("foff", matrix, 4000, seed=2)
        streamed = run_single_fast(
            "foff", matrix, 4000, seed=2, window_slots=333
        )
        assert mono.delay_ci().mean == streamed.delay_ci().mean
        assert mono.delay_ci().half_width == streamed.delay_ci().half_width
