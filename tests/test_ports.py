"""Unit tests for queue primitives (switching/ports.py)."""

from repro.switching.packet import Packet
from repro.switching.ports import FifoQueue, PerOutputBank, VoqBank


def make_packet(i=0, j=0, seq=0):
    return Packet(input_port=i, output_port=j, arrival_slot=0, seq=seq)


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        packets = [make_packet(seq=k) for k in range(5)]
        q.extend(packets)
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = FifoQueue()
        q.push(make_packet(seq=9))
        assert q.peek().seq == 9
        assert len(q) == 1

    def test_statistics(self):
        q = FifoQueue()
        for k in range(3):
            q.push(make_packet(seq=k))
        q.pop()
        assert q.max_depth == 3
        assert q.total_enqueued == 3
        assert q.total_dequeued == 1
        assert len(q) == 2

    def test_truthiness(self):
        q = FifoQueue()
        assert not q
        q.push(make_packet())
        assert q

    def test_iteration(self):
        q = FifoQueue()
        q.extend(make_packet(seq=k) for k in range(3))
        assert [p.seq for p in q] == [0, 1, 2]


class TestVoqBank:
    def test_routes_by_output(self):
        bank = VoqBank(4)
        bank.push(make_packet(j=2))
        bank.push(make_packet(j=2, seq=1))
        bank.push(make_packet(j=0))
        assert len(bank.queue(2)) == 2
        assert len(bank.queue(0)) == 1
        assert bank.occupancy() == 3

    def test_longest(self):
        bank = VoqBank(4)
        assert bank.longest() is None
        bank.push(make_packet(j=1))
        bank.push(make_packet(j=3))
        bank.push(make_packet(j=3, seq=1))
        assert bank.longest() == 3

    def test_longest_ties_to_lowest_index(self):
        bank = VoqBank(4)
        bank.push(make_packet(j=2))
        bank.push(make_packet(j=1))
        assert bank.longest() == 1

    def test_nonempty_outputs(self):
        bank = VoqBank(4)
        bank.push(make_packet(j=0))
        bank.push(make_packet(j=3))
        assert bank.nonempty_outputs() == [0, 3]


class TestPerOutputBank:
    def test_routes_by_output(self):
        bank = PerOutputBank(4)
        bank.push(make_packet(j=1))
        assert len(bank.queue(1)) == 1
        assert bank.occupancy() == 1

    def test_occupancy_across_queues(self):
        bank = PerOutputBank(4)
        for j in range(4):
            bank.push(make_packet(j=j))
        assert bank.occupancy() == 4
