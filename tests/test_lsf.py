"""Unit tests for the LSF scheduling structures (core/lsf.py)."""

import pytest

from repro.core.dyadic import DyadicInterval
from repro.core.lsf import (
    LsfInputScheduler,
    LsfIntermediateScheduler,
    highest_set_bit,
)
from repro.core.striping import Stripe
from repro.switching.packet import Packet


def make_stripe(stripe_id, start, size, output=0, input_port=0):
    packets = [
        Packet(input_port=input_port, output_port=output, arrival_slot=0, seq=k)
        for k in range(size)
    ]
    return Stripe(stripe_id, input_port, output, DyadicInterval(start, size), packets)


class TestHighestSetBit:
    def test_empty(self):
        assert highest_set_bit(0) == -1

    def test_values(self):
        assert highest_set_bit(1) == 0
        assert highest_set_bit(0b1010) == 3
        assert highest_set_bit(1 << 17) == 17

    def test_matches_naive(self):
        for bitmap in range(1, 512):
            naive = max(k for k in range(10) if bitmap & (1 << k))
            assert highest_set_bit(bitmap) == naive


class TestLsfInputScheduler:
    def test_insert_and_serve_single_stripe(self):
        lsf = LsfInputScheduler(8)
        stripe = make_stripe(0, 4, 4)
        lsf.insert(stripe)
        assert lsf.occupancy == 4
        served = [lsf.serve(port) for port in range(4, 8)]
        assert [p.stripe_pos for p in served] == [0, 1, 2, 3]
        assert lsf.occupancy == 0

    def test_serve_empty_row(self):
        lsf = LsfInputScheduler(8)
        assert lsf.serve(0) is None

    def test_largest_stripe_first(self):
        lsf = LsfInputScheduler(8)
        small = make_stripe(0, 0, 2)
        big = make_stripe(1, 0, 8)
        lsf.insert(small)
        lsf.insert(big)
        # Row 0 holds both; the size-8 stripe must be served first.
        assert lsf.serve(0).stripe_id == 1
        # Row 1 likewise.
        assert lsf.serve(1).stripe_id == 1

    def test_fifo_within_same_size(self):
        lsf = LsfInputScheduler(8)
        first = make_stripe(0, 0, 4)
        second = make_stripe(1, 0, 4)
        lsf.insert(first)
        lsf.insert(second)
        assert lsf.serve(0).stripe_id == 0
        assert lsf.serve(0).stripe_id == 1

    def test_can_insert_safe_positions(self):
        lsf = LsfInputScheduler(8)
        stripe = make_stripe(0, 4, 2)  # interval [4, 6)
        # Safe: pointer at or before the start, or at/after the end.
        for pointer in (0, 3, 4, 6, 7):
            assert lsf.can_insert(stripe, pointer)
        # Unsafe: strictly inside.
        assert not lsf.can_insert(stripe, 5)

    def test_can_insert_full_width_only_at_start(self):
        lsf = LsfInputScheduler(8)
        stripe = make_stripe(0, 0, 8)
        assert lsf.can_insert(stripe, 0)
        for pointer in range(1, 8):
            assert not lsf.can_insert(stripe, pointer)

    def test_row_occupancy(self):
        lsf = LsfInputScheduler(8)
        lsf.insert(make_stripe(0, 0, 2))
        lsf.insert(make_stripe(1, 0, 4))
        assert lsf.row_occupancy(0) == 2
        assert lsf.row_occupancy(1) == 2
        assert lsf.row_occupancy(2) == 1
        assert lsf.row_occupancy(4) == 0


class TestLsfIntermediateScheduler:
    def deliver_stripe_packet(self, lsf, output, size, seq=0, stripe_id=0):
        packet = Packet(input_port=0, output_port=output, arrival_slot=0, seq=seq)
        packet.stripe_size = size
        packet.stripe_id = stripe_id
        lsf.deliver(packet)
        return packet

    def test_deliver_and_serve(self):
        lsf = LsfIntermediateScheduler(8)
        self.deliver_stripe_packet(lsf, output=3, size=4)
        assert lsf.occupancy == 1
        assert lsf.serve(3).output_port == 3
        assert lsf.serve(3) is None

    def test_largest_size_class_first(self):
        lsf = LsfIntermediateScheduler(8)
        small = self.deliver_stripe_packet(lsf, output=2, size=1, stripe_id=0)
        big = self.deliver_stripe_packet(lsf, output=2, size=8, stripe_id=1)
        assert lsf.serve(2) is big
        assert lsf.serve(2) is small

    def test_outputs_independent(self):
        lsf = LsfIntermediateScheduler(8)
        self.deliver_stripe_packet(lsf, output=1, size=2)
        assert lsf.serve(0) is None
        assert lsf.serve(1) is not None

    def test_rejects_headerless_packet(self):
        lsf = LsfIntermediateScheduler(8)
        with pytest.raises(ValueError):
            lsf.deliver(Packet(input_port=0, output_port=0, arrival_slot=0))

    def test_output_occupancy(self):
        lsf = LsfIntermediateScheduler(8)
        self.deliver_stripe_packet(lsf, output=5, size=2, seq=0)
        self.deliver_stripe_packet(lsf, output=5, size=4, seq=1)
        assert lsf.output_occupancy(5) == 2
        assert lsf.output_occupancy(4) == 0
