"""Shared test helpers (plain functions, no fixtures).

These used to live in ``tests/conftest.py`` and were imported with a bare
``from conftest import ...`` — which pytest could resolve against
*benchmarks*' conftest instead, silently breaking collection of every
module that did so.  They now live in a regular module imported by its
package-qualified name, which is shadow-proof.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.sim.metrics import SimulationMetrics
from repro.switching.packet import Packet
from repro.traffic.generator import TrafficGenerator

__all__ = ["make_packets", "drive_switch", "assert_consecutive"]


def make_packets(
    voq_sequence: List[Tuple[int, int]], slot: int = 0
) -> List[Packet]:
    """Build a same-slot batch of packets with per-VOQ sequence numbers."""
    seqs: Dict[Tuple[int, int], int] = {}
    packets = []
    for i, j in voq_sequence:
        seq = seqs.get((i, j), 0)
        seqs[(i, j)] = seq + 1
        packets.append(
            Packet(input_port=i, output_port=j, arrival_slot=slot, seq=seq)
        )
    return packets


def drive_switch(
    switch,
    matrix,
    num_slots: int,
    seed: int = 7,
    drain_slots: int = 0,
) -> SimulationMetrics:
    """Run ``switch`` against Bernoulli traffic; return raw metrics.

    A lighter-weight alternative to the engine for correctness tests:
    every departure is measured (no warm-up discard).
    """
    traffic = TrafficGenerator(matrix, np.random.default_rng(seed))
    metrics = SimulationMetrics()
    for slot, packets in traffic.slots(num_slots):
        for packet in switch.step(slot, packets):
            metrics.observe_departure(packet, measure=True)
    if drain_slots:
        for packet in switch.drain(drain_slots):
            metrics.observe_departure(packet, measure=True)
    return metrics


def assert_consecutive(values: List[int], label: str) -> None:
    """Assert a list of ints is consecutive ascending (stripe continuity)."""
    expected = list(range(values[0], values[0] + len(values)))
    assert values == expected, f"{label}: {values} not consecutive"
