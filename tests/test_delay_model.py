"""Tests for the §5 intermediate-stage delay model (analysis/delay_model.py)."""

import numpy as np
import pytest

from repro.analysis.delay_model import (
    expected_queue_length,
    expected_queue_length_numeric,
    fig5_series,
    simulate_chain,
    stationary_distribution,
)


class TestClosedForm:
    def test_formula(self):
        # rho (N-1) / (2 (1 - rho))
        assert expected_queue_length(1000, 0.9) == pytest.approx(4495.5)
        assert expected_queue_length(1, 0.5) == 0.0

    def test_linear_in_n(self):
        # The paper's Figure 5 observation.
        e1 = expected_queue_length(100, 0.9)
        e2 = expected_queue_length(200, 0.9)
        e4 = expected_queue_length(400, 0.9)
        assert (e2 / e1) == pytest.approx(199 / 99)
        assert (e4 / e2) == pytest.approx(399 / 199)

    def test_diverges_as_rho_to_one(self):
        assert expected_queue_length(64, 0.99) > 10 * expected_queue_length(64, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_queue_length(0, 0.5)
        with pytest.raises(ValueError):
            expected_queue_length(8, 1.0)


class TestStationarySolve:
    @pytest.mark.parametrize("n,rho", [(4, 0.5), (8, 0.9), (16, 0.8), (32, 0.6)])
    def test_numeric_matches_closed_form(self, n, rho):
        numeric = expected_queue_length_numeric(n, rho)
        closed = expected_queue_length(n, rho)
        assert numeric == pytest.approx(closed, rel=0.02)

    def test_distribution_normalized_and_nonnegative(self):
        pi = stationary_distribution(8, 0.8)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_mass_near_origin_at_light_load(self):
        pi = stationary_distribution(8, 0.1)
        assert pi[0] > 0.8

    def test_truncation_override(self):
        pi = stationary_distribution(4, 0.5, truncation=200)
        assert len(pi) == 200


class TestChainSimulation:
    def test_matches_closed_form(self):
        n, rho = 8, 0.7
        mc = simulate_chain(n, rho, cycles=400_000, rng=np.random.default_rng(0))
        assert mc == pytest.approx(expected_queue_length(n, rho), rel=0.15)

    def test_empty_at_zero_load(self):
        assert simulate_chain(8, 0.0, 1000, np.random.default_rng(0)) == 0.0


class TestFig5Series:
    def test_default_series(self):
        rows = fig5_series()
        assert [row["N"] for row in rows] == [8, 16, 32, 64, 128, 256, 512, 1024]
        delays = [row["delay_periods"] for row in rows]
        assert delays == sorted(delays)

    def test_custom(self):
        rows = fig5_series(ns=(10, 20), rho=0.5)
        assert rows[0]["delay_periods"] == pytest.approx(0.5 * 9 / (2 * 0.5))
