"""Empirical demonstrations of the §4.2.2 negative-association lemmas."""

import numpy as np
import pytest

from repro.analysis.negative_association import (
    permutation_covariance,
    permutation_mgf_product_gap,
)


class TestPermutationCovariance:
    def test_indicator_covariance_nonpositive(self, rng):
        # Lemma 3: permutation distributions are NA; for the indicator
        # functions used in Theorem 2's proof the covariance is <= 0.
        values = [1.0] * 4 + [0.0] * 12  # 4 "large-stripe" markers
        cov, stderr = permutation_covariance(
            values,
            set_a=[0, 1, 2],
            set_b=[3, 4, 5],
            g_a=lambda x: float(x.sum()),
            g_b=lambda x: float(x.sum()),
            trials=4000,
            rng=rng,
        )
        assert cov <= 3 * stderr  # nonpositive up to noise

    def test_covariance_clearly_negative_for_sums(self, rng):
        # Splitting a permutation of distinct values in half: the halves'
        # sums are perfectly anticorrelated.
        values = list(range(10))
        cov, _ = permutation_covariance(
            values,
            set_a=list(range(5)),
            set_b=list(range(5, 10)),
            g_a=lambda x: float(x.sum()),
            g_b=lambda x: float(x.sum()),
            trials=2000,
            rng=rng,
        )
        assert cov < 0

    def test_rejects_overlapping_sets(self, rng):
        with pytest.raises(ValueError):
            permutation_covariance(
                [1, 2, 3], [0, 1], [1, 2],
                g_a=float, g_b=float, trials=10, rng=rng,
            )

    def test_rejects_tiny_trials(self, rng):
        with pytest.raises(ValueError):
            permutation_covariance(
                [1, 2, 3, 4], [0], [1],
                g_a=float, g_b=float, trials=1, rng=rng,
            )


class TestMgfProductBound:
    def test_product_dominates(self, rng):
        # Lemma 2 consequence: E[exp(theta sum Xi)] <= prod E[exp(theta Xi)].
        values = [0.0, 0.1, 0.2, 0.5, 1.0]
        for theta in (0.1, 0.5, 2.0):
            lhs, rhs = permutation_mgf_product_gap(values, theta, 32, rng)
            assert lhs <= rhs + 1e-9

    def test_equality_for_constant_values(self, rng):
        lhs, rhs = permutation_mgf_product_gap([0.5] * 6, 1.0, 8, rng)
        assert lhs == pytest.approx(rhs)
