"""The experiment store: keys, round-trip fidelity, zero recomputation.

The acceptance bar is the sweep test: re-running an identical sweep with
the store enabled performs *zero* simulation recomputation — pinned by
counting calls into the (monkeypatched) execution layer.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import sqlite3
from collections import Counter

import numpy as np
import pytest

import repro.sim.experiment as experiment
from repro.sim.experiment import (
    delay_vs_load_sweep,
    run_single,
    single_run_params,
)
from repro.sim.metrics import SimulationResult
from repro.sim.replication import replicate
from repro.scenarios import get_scenario
from repro.store import (
    ExperimentStore,
    cache_key,
    canonical_params,
    coerce_store,
)
from repro.traffic.matrices import uniform_matrix

from tests.test_scenarios import assert_results_identical

#: Every ObjectBackend implementation must pass the backend-agnostic
#: tests below identically — the `store` fixture runs them on each.
STORE_BACKENDS = ("dir", "sqlite")


@pytest.fixture(params=STORE_BACKENDS)
def store(tmp_path, request):
    return ExperimentStore(tmp_path / "store", backend=request.param)


def params_for(**overrides):
    base = dict(
        switch_name="ufs",
        matrix=uniform_matrix(4, 0.5),
        num_slots=500,
        seed=0,
        load_label=0.5,
        warmup_fraction=0.1,
        keep_samples=True,
        engine="object",
        spec=None,
    )
    base.update(overrides)
    return single_run_params(**base)


class TestCacheKeys:
    def test_deterministic(self):
        assert cache_key(params_for()) == cache_key(params_for())

    def test_every_axis_changes_the_key(self):
        base = cache_key(params_for())
        assert cache_key(params_for(seed=1)) != base
        assert cache_key(params_for(num_slots=600)) != base
        assert cache_key(params_for(engine="vectorized")) != base
        assert cache_key(params_for(switch_name="sprinklers")) != base
        assert cache_key(params_for(keep_samples=False)) != base
        assert (
            cache_key(params_for(matrix=uniform_matrix(4, 0.6))) != base
        )

    def test_scenario_workload_identity(self):
        spec = get_scenario("paper-uniform")
        with_spec = params_for(spec=spec)
        assert with_spec["workload"] == {"scenario": spec.to_dict()}
        assert cache_key(with_spec) != cache_key(params_for())

    def test_nan_load_label_is_stable(self):
        a = cache_key(params_for(load_label=float("nan")))
        b = cache_key(params_for(load_label=float("nan")))
        assert a == b


class TestRoundTrip:
    def test_result_survives_store(self, store):
        first = run_single(
            "sprinklers",
            uniform_matrix(8, 0.7),
            1000,
            seed=2,
            load_label=0.7,
            store=store,
        )
        assert store.hits == 0 and store.misses == 1
        again = run_single(
            "sprinklers",
            uniform_matrix(8, 0.7),
            1000,
            seed=2,
            load_label=0.7,
            store=store,
        )
        assert store.hits == 1
        assert_results_identical(first, again)
        # samples survive, so order-sensitive statistics still work
        assert again.delay_ci().mean == first.delay_ci().mean

    def test_to_dict_from_dict_lossless(self):
        result = run_single("ufs", uniform_matrix(4, 0.6), 600, seed=1)
        clone = SimulationResult.from_dict(result.to_dict())
        assert_results_identical(result, clone)
        assert clone.is_ordered == result.is_ordered
        assert clone.throughput == result.throughput

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        (obj,) = list(store.objects_dir.glob("*/*.json.gz"))
        obj.write_bytes(b"not gzip at all")
        result = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        assert result.measured_packets > 0
        assert store.hits == 0

    def test_truncated_object_is_a_miss(self, tmp_path):
        # gzip raises EOFError (not OSError) on truncation — e.g. a
        # partially copied store directory; it must read as a miss.
        store = ExperimentStore(tmp_path)
        expected = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        (obj,) = list(store.objects_dir.glob("*/*.json.gz"))
        obj.write_bytes(obj.read_bytes()[:-8])
        result = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        assert store.hits == 0
        assert result.mean_delay == expected.mean_delay

    def test_manifest_lines_appended(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_single(
            "ufs",
            scenario="paper-uniform",
            n=4,
            load=0.5,
            num_slots=300,
            store=store,
        )
        lines = store.manifest_path.read_text().splitlines()
        assert len(lines) == 1
        assert '"scenario":"paper-uniform"' in lines[0]

    def test_read_only_manifest_still_serves_hits(self, tmp_path, caplog):
        # A shared/read-only store must keep serving hits even when the
        # best-effort hit log cannot be appended — and must say so once
        # at DEBUG instead of swallowing every failure silently.
        # (chmod is bypassed by root, so force the append to fail with
        # IsADirectoryError — also an OSError — by squatting the path.)
        store = ExperimentStore(tmp_path)
        expected = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        store.manifest_path.unlink()
        store.manifest_path.mkdir()
        with caplog.at_level("DEBUG", logger="repro"):
            for _ in range(3):
                hit = run_single(
                    "ufs", uniform_matrix(4, 0.5), 300, store=store
                )
                assert hit.mean_delay == expected.mean_delay
        assert store.hits == 3
        debug_records = [
            r for r in caplog.records
            if "hit logging disabled" in r.getMessage()
        ]
        assert len(debug_records) == 1  # logged once, not per hit
        assert debug_records[0].levelname == "DEBUG"

    def test_coerce_store(self, tmp_path):
        assert coerce_store(None) is None
        store = coerce_store(tmp_path / "s")
        assert isinstance(store, ExperimentStore)
        assert coerce_store(store) is store


class TestZeroRecompute:
    """The acceptance criterion: cached sweeps simulate nothing."""

    @pytest.fixture()
    def counting_execute(self, monkeypatch):
        calls = []
        real = experiment._execute_single

        def counted(*args, **kwargs):
            calls.append(args[0])
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment, "_execute_single", counted)
        return calls

    @pytest.mark.parametrize("engine", ["object", "vectorized"])
    def test_identical_sweep_recomputes_nothing(
        self, store, counting_execute, engine
    ):
        kwargs = dict(
            n=8,
            loads=[0.3, 0.7],
            num_slots=600,
            switches=["sprinklers", "ufs", "load-balanced"],
            seed=0,
            engine=engine,
            store=store,
        )
        first = delay_vs_load_sweep("paper-uniform", **kwargs)
        assert len(counting_execute) == 6
        counting_execute.clear()
        second = delay_vs_load_sweep("paper-uniform", **kwargs)
        assert counting_execute == []  # zero simulation recomputation
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_widening_a_sweep_computes_only_new_cells(
        self, tmp_path, counting_execute
    ):
        base = dict(
            n=8,
            num_slots=500,
            switches=["ufs"],
            engine="vectorized",
            store=tmp_path,
        )
        delay_vs_load_sweep("paper-uniform", loads=[0.3, 0.5], **base)
        counting_execute.clear()
        delay_vs_load_sweep("paper-uniform", loads=[0.3, 0.5, 0.9], **base)
        assert counting_execute == ["ufs"]  # only the 0.9 cell ran

    def test_replication_cache(self, tmp_path, counting_execute):
        kwargs = dict(
            scenario="mmpp-bursty",
            n=8,
            load=0.6,
            num_slots=500,
            replications=3,
            engine="vectorized",
            store=tmp_path,
        )
        first = replicate("sprinklers", **kwargs)
        counting_execute.clear()
        second = replicate("sprinklers", **kwargs)
        assert counting_execute == []
        assert first.values == second.values

    def test_matrix_vs_scenario_do_not_collide(
        self, tmp_path, counting_execute
    ):
        # Same (switch, n, load, slots, seed) but different workload
        # identities must occupy distinct cache entries.
        run_single(
            "ufs",
            uniform_matrix(8, 0.5),
            400,
            load_label=0.5,
            store=tmp_path,
        )
        run_single(
            "ufs",
            scenario="paper-uniform",
            n=8,
            load=0.5,
            num_slots=400,
            store=tmp_path,
        )
        assert len(counting_execute) == 2


class TestStoreDoesNotChangeResults:
    def test_store_transparent_for_sweep(self, store):
        plain = delay_vs_load_sweep(
            "quasi-diagonal",
            n=8,
            loads=[0.5],
            num_slots=500,
            switches=["sprinklers"],
            engine="vectorized",
        )
        stored = delay_vs_load_sweep(
            "quasi-diagonal",
            n=8,
            loads=[0.5],
            num_slots=500,
            switches=["sprinklers"],
            engine="vectorized",
            store=store,
        )
        cached = delay_vs_load_sweep(
            "quasi-diagonal",
            n=8,
            loads=[0.5],
            num_slots=500,
            switches=["sprinklers"],
            engine="vectorized",
            store=store,
        )
        assert_results_identical(plain[0], stored[0])
        assert_results_identical(plain[0], cached[0])


class TestStatsAndGc:
    """`repro store stats` / `gc` backing methods (ROADMAP store item)."""

    def _populate(self, store, runs=2):
        for seed in range(runs):
            run_single(
                "ufs", uniform_matrix(4, 0.5), 300, seed=seed, store=store
            )

    def test_stats_counts_entries_saves_and_hits(self, store):
        self._populate(store, runs=2)
        run_single("ufs", uniform_matrix(4, 0.5), 300, seed=0, store=store)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.saves == 2
        assert stats.hits == 1
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.total_bytes > 0
        assert stats.oldest is not None and stats.newest >= stats.oldest

    def test_stats_empty_store(self, store):
        stats = store.stats()
        assert stats.entries == 0
        assert math.isnan(stats.hit_rate)

    def test_gc_by_age(self, store):
        self._populate(store, runs=3)
        report = store.gc(max_age_seconds=0.0)
        assert report.removed == 3
        assert report.kept == 0
        assert report.bytes_freed > 0
        assert len(store) == 0
        # Manifest compacted: no stale lines survive.
        assert store.stats().saves == 0

    def test_gc_by_size_removes_oldest_first(self, tmp_path):
        # Dir-only: drives object age through file mtimes on disk.
        import os
        import time

        store = ExperimentStore(tmp_path)
        self._populate(store, runs=3)
        paths = sorted(
            store.objects_dir.glob("*/*.json.gz"), key=lambda p: p.stat().st_mtime
        )
        # Force distinct mtimes so "oldest" is well defined.
        now = time.time()
        for rank, path in enumerate(paths):
            os.utime(path, (now + rank, now + rank))
        one_size = paths[0].stat().st_size
        report = store.gc(max_total_bytes=one_size)
        assert report.kept == 1
        survivors = list(store.objects_dir.glob("*/*.json.gz"))
        assert survivors == [paths[-1]]  # newest kept

    def test_gc_without_bounds_keeps_everything(self, store):
        self._populate(store, runs=2)
        report = store.gc()
        assert report.removed == 0
        assert report.kept == 2
        # Cached results still fetch after the manifest compaction.
        before = store.hits
        run_single("ufs", uniform_matrix(4, 0.5), 300, seed=0, store=store)
        assert store.hits == before + 1

    def test_gc_then_recompute_round_trips(self, store):
        first = run_single(
            "foff", uniform_matrix(4, 0.6), 400, seed=2, store=store,
            engine="vectorized",
        )
        store.gc(max_age_seconds=0.0)
        again = run_single(
            "foff", uniform_matrix(4, 0.6), 400, seed=2, store=store,
            engine="vectorized",
        )
        assert_results_identical(first, again)


class TestBackendParity:
    """SqliteBackend stores what DirBackend stores — bit for bit."""

    def test_payload_bit_identical_across_backends(self, tmp_path):
        blobs = {}
        for name in STORE_BACKENDS:
            store = ExperimentStore(tmp_path / name, backend=name)
            run_single(
                "ufs", uniform_matrix(4, 0.5), 500, load_label=0.5,
                store=store,
            )
            payload = store.backend.get(cache_key(params_for()))
            assert payload is not None
            blobs[name] = canonical_params(payload)
        assert blobs["dir"] == blobs["sqlite"]

    def test_sqlite_store_reopens_by_bare_path(self, tmp_path):
        # store_dir() flattens stores to a path for pool workers; the
        # database file must be enough to pick the backend back up.
        store = ExperimentStore(tmp_path, backend="sqlite")
        expected = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        reopened = ExperimentStore(tmp_path)
        assert reopened.backend.name == "sqlite"
        again = run_single("ufs", uniform_matrix(4, 0.5), 300, store=reopened)
        assert reopened.hits == 1
        assert_results_identical(expected, again)

    def test_sqlite_prefix_coerce(self, tmp_path):
        store = coerce_store(f"sqlite:{tmp_path / 's'}")
        assert isinstance(store, ExperimentStore)
        assert store.backend.name == "sqlite"

    def test_corrupt_sqlite_payload_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path, backend="sqlite")
        run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        with sqlite3.connect(store.backend.db_path) as conn:
            conn.execute("UPDATE objects SET payload = 'not json'")
        result = run_single("ufs", uniform_matrix(4, 0.5), 300, store=store)
        assert store.hits == 0
        assert result.measured_packets > 0

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ExperimentStore(tmp_path, backend="postgres")


def _append_burst(root, backend, worker, count):
    store = ExperimentStore(root, backend=backend)
    for i in range(count):
        store._append_manifest({"worker": worker, "i": i})


class TestManifestConcurrency:
    """Concurrent pool/service workers never tear manifest lines."""

    WORKERS = 8
    APPENDS = 50

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_parallel_appends_keep_every_line_intact(
        self, tmp_path, backend
    ):
        root = tmp_path / backend
        ExperimentStore(root, backend=backend)  # create the layout once
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=_append_burst,
                args=(str(root), backend, worker, self.APPENDS),
            )
            for worker in range(self.WORKERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = ExperimentStore(root, backend=backend)
        lines = [
            line for line in store.backend.manifest_lines() if line.strip()
        ]
        expected = self.WORKERS * self.APPENDS
        assert len(lines) == expected
        # Every line parses (no torn/interleaved writes) and every
        # (worker, i) append survived exactly once.
        records = [json.loads(line) for line in lines]
        counts = Counter((r["worker"], r["i"]) for r in records)
        assert len(counts) == expected
        assert set(counts.values()) == {1}
