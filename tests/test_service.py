"""The simulation job service: dedup, crash recovery, streaming, HTTP.

The acceptance bar (ISSUE 8): two concurrent identical sweep submissions
perform each shard's computation **exactly once** (asserted against the
store manifest — one save per key), partial results stream as cells
complete (event order ``job`` -> ``shard``* -> ``done``), and a worker
killed mid-shard has its shard re-queued and completed by a replacement.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import Counter

import pytest

from repro.service import (
    JobRequest,
    ServiceClient,
    ServiceError,
    ShardSpec,
    SimulationService,
    WorkerPool,
    expand_shards,
    serve,
    shard_key,
    shard_run_kwargs,
)
from repro.sim.experiment import run_single
from repro.store import ExperimentStore


def small_request(**overrides):
    base = dict(
        workload="uniform",
        switches=("sprinklers", "pf"),
        loads=(0.3, 0.6),
        n=8,
        num_slots=300,
        seeds=(0,),
    )
    base.update(overrides)
    return JobRequest(**base)


class TestJobModel:
    def test_expand_is_the_full_grid(self):
        request = small_request(seeds=(0, 1))
        shards = expand_shards(request)
        assert len(shards) == 8  # 2 seeds x 2 loads x 2 switches
        cells = {(s.switch, s.load, s.seed) for s in shards}
        assert len(cells) == 8

    def test_round_trip_dicts(self):
        request = small_request(engine="vectorized")
        assert JobRequest.from_dict(request.to_dict()) == request
        shard = expand_shards(request)[0]
        assert ShardSpec.from_dict(shard.to_dict()) == shard

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            small_request(switches=())
        with pytest.raises(ValueError):
            small_request(loads=())
        with pytest.raises(ValueError):
            small_request(seeds=())

    def test_shard_key_is_run_single_store_key(self, tmp_path):
        """Shard identity IS store identity — the dedup foundation."""
        for workload in ("uniform", "paper-uniform"):
            shard = expand_shards(small_request(workload=workload))[0]
            store = ExperimentStore(tmp_path / workload)
            run_single(store=store, **shard_run_kwargs(shard))
            assert store.fetch_by_key(shard_key(shard)) is not None

    def test_invalid_shard_raises_at_planning(self):
        shard = expand_shards(small_request(switches=("nonesuch",)))[0]
        with pytest.raises(ValueError, match="unknown switch"):
            shard_key(shard)


class TestServiceDedup:
    def test_concurrent_identical_submissions_compute_once(self, tmp_path):
        request = small_request()
        with SimulationService(tmp_path, workers=2) as service:
            ids = [None, None]

            def submit(slot):
                ids[slot] = service.submit(request)

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in (0, 1)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(service.wait(jid, timeout=120) for jid in ids)
            first, second = (service.status(jid) for jid in ids)
            assert first["failed"] == 0 and second["failed"] == 0
            # Each key computed by exactly one job; the other shared or
            # (if it lost the race entirely) read the stored result.
            assert (
                first["sources"]["new"] + second["sources"]["new"] == 4
            )
            saves = Counter(
                record["key"]
                for record in service.store.manifest_records()
                if record.get("event") != "hit"
            )
            assert len(saves) == 4
            assert all(count == 1 for count in saves.values())

    def test_resubmission_is_served_from_store(self, tmp_path):
        request = small_request()
        with SimulationService(tmp_path, workers=2) as service:
            first = service.submit(request)
            assert service.wait(first, timeout=120)
            again = service.submit(request)
            assert service.wait(again, timeout=5)
            assert service.status(again)["sources"] == {
                "new": 0, "shared": 0, "cached": 4,
            }

    def test_fresh_service_reuses_a_populated_store(self, tmp_path):
        request = small_request()
        with SimulationService(tmp_path, workers=2) as service:
            jid = service.submit(request)
            assert service.wait(jid, timeout=120)
        with SimulationService(tmp_path, workers=2) as service:
            jid = service.submit(request)
            assert service.wait(jid, timeout=5)
            assert service.status(jid)["sources"]["cached"] == 4

    def test_event_stream_order_and_content(self, tmp_path):
        request = small_request()
        with SimulationService(tmp_path, workers=2) as service:
            jid = service.submit(request)
            events = list(service.events(jid, follow=True, timeout=120))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "job"
        assert kinds[-1] == "done"
        assert kinds.count("shard") == 4
        assert events[0]["shards"] == 4
        for event in events[1:-1]:
            assert event["status"] == "done"
            assert event["summary"]["mean_delay"] > 0
        assert events[-1]["status"] == "done"
        assert events[-1]["failed"] == 0

    def test_unknown_switch_rejected_before_any_state(self, tmp_path):
        with SimulationService(tmp_path, workers=1) as service:
            with pytest.raises(ValueError, match="unknown switch"):
                service.submit(small_request(switches=("nonesuch",)))
            assert service.status()["jobs"] == []

    def test_unknown_job_raises(self, tmp_path):
        with SimulationService(tmp_path, workers=1) as service:
            with pytest.raises(ValueError, match="unknown job"):
                service.status("job-9999")


def _failing_runner(payload):
    raise RuntimeError("shard exploded")


class TestShardFailures:
    def test_failed_shard_surfaces_without_wedging_the_job(self, tmp_path):
        with SimulationService(
            tmp_path, workers=1, runner=_failing_runner
        ) as service:
            jid = service.submit(small_request(switches=("sprinklers",)))
            assert service.wait(jid, timeout=30)
            status = service.status(jid)
            assert status["status"] == "failed"
            assert status["failed"] == 2
            events = list(service.events(jid))
            shard_events = [e for e in events if e["event"] == "shard"]
            assert all(e["status"] == "failed" for e in shard_events)
            assert all(
                "RuntimeError: shard exploded" in e["error"]
                for e in shard_events
            )
            assert events[-1]["status"] == "failed"

    def test_failed_shards_are_retried_by_a_new_submission(self, tmp_path):
        request = small_request(switches=("sprinklers",), loads=(0.3,))
        with SimulationService(
            tmp_path, workers=1, runner=_failing_runner
        ) as service:
            jid = service.submit(request)
            assert service.wait(jid, timeout=30)
            again = service.submit(request)
            assert service.wait(again, timeout=30)
            # Not inherited as "cached" failure — genuinely re-attempted.
            assert service.status(again)["sources"]["new"] == 1


#: Consumed-once crash flag: the first worker to see the file removes it
#: and hangs (to be killed); the respawned worker runs normally.
_CRASH_FLAG_ENV = "REPRO_TEST_CRASH_FLAG"


def _hang_once_runner(payload):
    flag = payload.get("flag") or os.environ.get(_CRASH_FLAG_ENV, "")
    if flag and os.path.exists(flag):
        os.unlink(flag)
        time.sleep(120)
    return {"row": {"ok": True}, "wall_s": 0.01}


def _hang_once_execute(payload):
    from repro.service.jobs import execute_shard

    flag = os.environ.get(_CRASH_FLAG_ENV, "")
    if flag and os.path.exists(flag):
        os.unlink(flag)
        time.sleep(120)
    return execute_shard(payload)


def _wait_for(predicate, timeout, message):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


class TestWorkerCrashRecovery:
    def test_pool_requeues_shard_of_killed_worker(self, tmp_path):
        flag = tmp_path / "crash-flag"
        flag.touch()
        done = threading.Event()
        results = {}

        def on_done(task_id, payload):
            results[task_id] = payload
            done.set()

        pool = WorkerPool(_hang_once_runner, workers=1, on_done=on_done)
        pool.start()
        try:
            pool.submit("shard-1", {"flag": str(flag)})
            _wait_for(
                lambda: not flag.exists(), 15,
                "worker never picked the task up",
            )
            with pool._lock:
                (victim,) = list(pool._procs)
            os.kill(victim, signal.SIGKILL)
            assert done.wait(timeout=30), "requeued shard never completed"
            assert pool.requeues == 1
            assert results["shard-1"]["row"]["ok"] is True
        finally:
            pool.stop()

    def test_service_completes_sweep_across_worker_kill(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "crash-flag"
        flag.touch()
        monkeypatch.setenv(_CRASH_FLAG_ENV, str(flag))
        request = small_request(switches=("sprinklers",), loads=(0.4,))
        with SimulationService(
            tmp_path / "store", workers=1, runner=_hang_once_execute
        ) as service:
            jid = service.submit(request)
            _wait_for(
                lambda: not flag.exists(), 15,
                "worker never picked the shard up",
            )
            with service.pool._lock:
                (victim,) = list(service.pool._procs)
            os.kill(victim, signal.SIGKILL)
            assert service.wait(jid, timeout=60)
            status = service.status(jid)
            assert status["status"] == "done"
            assert status["failed"] == 0
            assert service.pool.requeues == 1
            # The re-run shard's result landed in the store like any other.
            (key,) = service._jobs[jid].shard_keys
            assert service.store.fetch_by_key(key) is not None


class TestHTTPSurface:
    @pytest.fixture()
    def server(self, tmp_path):
        with serve(tmp_path, port=0, workers=2) as running:
            yield running

    def test_health_and_submit_watch_results(self, server):
        client = ServiceClient(server.address)
        health = client.health()
        assert health["status"] == "ok"
        assert health["backend"] in ("dir", "sqlite")

        job_id = client.submit(small_request())
        events = list(client.watch(job_id, timeout=120))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "job"
        assert kinds[-1] == "done"
        assert kinds.count("shard") == 4
        assert events[-1]["status"] == "done"

        status = client.status(job_id)
        assert status["status"] == "done"
        assert status["completed"] == 4

        rows = list(client.results(job_id))
        assert len(rows) == 4
        assert all(row["status"] == "done" for row in rows)
        assert all(row["result"]["measured_packets"] > 0 for row in rows)

        overall = client.status()
        assert [job["job_id"] for job in overall["jobs"]] == [job_id]

    def test_watch_streams_incrementally(self, server):
        """Partial results arrive while later shards are still running."""
        client = ServiceClient(server.address)
        job_id = client.submit(small_request(num_slots=2_000))
        seen_before_done = 0
        for event in client.watch(job_id, timeout=120):
            if event["event"] == "shard":
                status = client.status(job_id)
                if status["completed"] < status["shards"]:
                    seen_before_done += 1
            if event["event"] == "done":
                break
        # With 4 shards on 2 workers, at least the first completion must
        # stream while others are outstanding.
        assert seen_before_done >= 1

    def test_second_identical_submission_shares_or_hits(self, server):
        client = ServiceClient(server.address)
        first = client.submit(small_request())
        second = client.submit(small_request())
        done_first = list(client.watch(first, timeout=120))
        done_second = list(client.watch(second, timeout=120))
        assert done_first[-1]["status"] == "done"
        assert done_second[-1]["status"] == "done"
        s1, s2 = client.status(first), client.status(second)
        assert s1["sources"]["new"] + s2["sources"]["new"] == 4

    def test_errors_are_json(self, server):
        client = ServiceClient(server.address)
        with pytest.raises(ServiceError, match="404"):
            client.status("job-9999")
        with pytest.raises(ServiceError, match="unknown switch"):
            client.submit(small_request(switches=("nonesuch",)))

    def test_unreachable_daemon_message(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="repro serve"):
            client.health()


class TestServiceTelemetry:
    def test_daemon_spans_and_counters(self, tmp_path):
        from repro import telemetry

        with telemetry.scope():
            with SimulationService(tmp_path, workers=2) as service:
                jid = service.submit(small_request())
                assert service.wait(jid, timeout=120)
            trace = tmp_path / "trace.jsonl"
            spans = telemetry.export_jsonl(trace)
        assert spans >= 5  # 4 service.shard + 1 service.job
        names = [
            span["name"]
            for span in telemetry.read_trace(trace)["spans"]
        ]
        assert names.count("service.shard") == 4
        assert names.count("service.job") == 1
        assert telemetry.check_trace(telemetry.read_trace(trace)) == []
