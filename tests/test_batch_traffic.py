"""Batch traffic generator: bit-identical to the object generator.

The whole engine-parity story rests on one invariant: for the same
matrix, arrival process and random generator state,
:class:`~repro.traffic.batch.BatchTrafficGenerator` emits *exactly* the
arrival stream that :class:`~repro.traffic.generator.TrafficGenerator`
hands to a switch — same slots, same inputs, same destinations, same
sequence numbers, same order.  These tests pin that invariant for the
paper's Bernoulli process and for the bursty on/off extension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.arrivals import OnOffArrivals
from repro.traffic.batch import BatchTrafficGenerator, bernoulli_batch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import diagonal_matrix, uniform_matrix


def _object_stream(generator: TrafficGenerator, num_slots: int):
    return [
        (slot, p.input_port, p.output_port, p.seq)
        for slot, packets in generator.slots(num_slots)
        for p in packets
    ]


def _batch_stream(batch):
    return list(
        zip(
            batch.slots.tolist(),
            batch.inputs.tolist(),
            batch.outputs.tolist(),
            batch.seqs.tolist(),
        )
    )


class TestStreamIdentity:
    @pytest.mark.parametrize(
        "matrix",
        [uniform_matrix(16, 0.9), uniform_matrix(8, 0.2), diagonal_matrix(16, 0.6)],
        ids=["uniform-hot", "uniform-cold", "diagonal"],
    )
    def test_bernoulli_identical(self, matrix):
        num_slots = 6000  # spans two rng chunks (chunk_slots = 4096)
        obj = TrafficGenerator(matrix, np.random.default_rng(42))
        bat = BatchTrafficGenerator(matrix, np.random.default_rng(42))
        assert _object_stream(obj, num_slots) == _batch_stream(
            bat.draw(num_slots)
        )
        assert obj.generated == bat.generated

    def test_onoff_identical(self):
        matrix = uniform_matrix(8, 0.6)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        obj = TrafficGenerator(
            matrix, rng_a, arrivals=OnOffArrivals(8, 0.9, 20.0, 10.0, rng_a)
        )
        bat = BatchTrafficGenerator(
            matrix, rng_b, arrivals=OnOffArrivals(8, 0.9, 20.0, 10.0, rng_b)
        )
        assert _object_stream(obj, 5000) == _batch_stream(bat.draw(5000))


class TestBatchSemantics:
    def test_sorted_by_slot_then_input(self):
        batch = bernoulli_batch(uniform_matrix(8, 0.9), seed=3).draw(2000)
        keys = batch.slots * 8 + batch.inputs
        assert np.all(np.diff(keys) > 0)  # at most one arrival per (slot, input)

    def test_seqs_are_per_voq_ranks(self):
        batch = bernoulli_batch(uniform_matrix(8, 0.8), seed=5).draw(3000)
        for voq in np.unique(batch.voqs):
            seqs = batch.seqs[batch.voqs == voq]
            assert seqs.tolist() == list(range(len(seqs)))

    def test_seqs_continue_across_draws(self):
        gen = bernoulli_batch(uniform_matrix(4, 0.9), seed=1)
        first = gen.draw(500)
        second = gen.draw(500)
        for voq in np.unique(second.voqs):
            expected_start = int(np.sum(first.voqs == voq))
            seqs = second.seqs[second.voqs == voq]
            assert seqs.tolist() == list(
                range(expected_start, expected_start + len(seqs))
            )

    def test_voqs_property(self):
        batch = bernoulli_batch(uniform_matrix(4, 0.5), seed=2).draw(200)
        assert np.array_equal(batch.voqs, batch.inputs * 4 + batch.outputs)
        assert len(batch) == len(batch.slots)

    def test_inadmissible_matrix_rejected(self):
        bad = np.full((4, 4), 0.3)  # row sums 1.2 > 1 packet/slot
        with pytest.raises(ValueError, match="row sums"):
            BatchTrafficGenerator(bad, np.random.default_rng(0))

    def test_nonpositive_draw_rejected(self):
        gen = bernoulli_batch(uniform_matrix(4, 0.5), seed=0)
        with pytest.raises(ValueError):
            gen.draw(0)
