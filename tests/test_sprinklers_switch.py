"""Behavioral tests for the Sprinklers switch (core/sprinklers_switch.py)."""

import numpy as np
import pytest

from repro.core.dyadic import DyadicInterval
from repro.core.interval_assignment import PlacementMode, StripeIntervalAssignment
from repro.core.sprinklers_switch import SprinklersSwitch, VoqPipeline
from repro.core.striping import Stripe, StripeAssembler
from repro.switching.packet import Packet
from repro.traffic.matrices import diagonal_matrix, uniform_matrix

from tests.helpers import drive_switch, make_packets


N = 8
MATRIX = uniform_matrix(N, 0.7)


def make_switch(matrix=MATRIX, seed=1, **kwargs) -> SprinklersSwitch:
    return SprinklersSwitch.from_rates(matrix, seed=seed, **kwargs)


class TestBasicOperation:
    def test_never_reorders_uniform(self):
        switch = make_switch()
        metrics = drive_switch(switch, MATRIX, 4000, drain_slots=4000)
        assert metrics.reordering.late_packets == 0

    def test_never_reorders_diagonal(self):
        matrix = diagonal_matrix(N, 0.85)
        switch = make_switch(matrix)
        metrics = drive_switch(switch, matrix, 4000, drain_slots=4000)
        assert metrics.reordering.late_packets == 0

    def test_conservation(self):
        switch = make_switch()
        drive_switch(switch, MATRIX, 1000)
        assert switch.conservation_ok()

    def test_full_stripes_eventually_depart(self):
        switch = make_switch()
        size = switch.stripe_size(0, 0)
        switch.step(0, make_packets([(0, 0)] * size))
        departures = switch.drain(40 * N)
        assert len(departures) == size

    def test_partial_stripes_wait(self):
        switch = make_switch()
        size = switch.stripe_size(0, 0)
        if size == 1:
            pytest.skip("stripe size 1 at this rate; nothing partial")
        switch.step(0, make_packets([(0, 0)] * (size - 1)))
        assert switch.drain(40 * N) == []
        assert switch.assembly_backlog() == size - 1

    def test_stripe_sizes_match_assignment(self):
        switch = make_switch()
        for i in range(N):
            for j in range(N):
                assert switch.stripe_size(i, j) == switch.assignment.stripe_size(i, j)

    def test_throughput_at_high_load(self):
        # 90% uniform load is far above the 2/3 worst-case threshold but
        # overwhelmingly safe under random placement; the switch must keep
        # up (departures track injections up to buffering).
        matrix = uniform_matrix(N, 0.9)
        switch = make_switch(matrix, seed=5)
        metrics = drive_switch(switch, matrix, 12_000, drain_slots=10_000)
        assert switch.departed >= 0.99 * switch.injected - N * N * N

    def test_fixed_stripe_size_mode(self):
        switch = make_switch(fixed_stripe_size=4)
        for i in range(N):
            for j in range(N):
                assert switch.stripe_size(i, j) == 4
        metrics = drive_switch(switch, MATRIX, 3000, drain_slots=4000)
        assert metrics.reordering.late_packets == 0

    def test_identity_placement_mode(self):
        switch = SprinklersSwitch.from_rates(
            MATRIX, seed=0, mode=PlacementMode.IDENTITY
        )
        metrics = drive_switch(switch, MATRIX, 3000, drain_slots=4000)
        # Identity placement is still reordering-free (ordering never
        # depended on randomization; only load balance does).
        assert metrics.reordering.late_packets == 0


class TestStagingDiscipline:
    def test_staging_drains_within_a_frame(self):
        switch = make_switch()
        size = switch.stripe_size(0, 0)
        switch.step(0, make_packets([(0, 0)] * size))
        # After at most N slots the staged stripe must have been inserted.
        for slot in range(1, N + 1):
            switch.step(slot, [])
        assert switch.staging_backlog() == 0

    def test_no_lsf_insertion_mid_interval(self):
        # Directly probe the safe-insertion rule through the scheduler.
        switch = make_switch()
        lsf = switch._input_lsf[0]
        packets = [
            Packet(input_port=0, output_port=0, arrival_slot=0, seq=k)
            for k in range(4)
        ]
        stripe = Stripe(99, 0, 0, DyadicInterval(4, 4), packets)
        assert lsf.can_insert(stripe, 4)
        assert not lsf.can_insert(stripe, 6)


class TestVoqPipeline:
    def make_stripe(self, stripe_id, interval, voq=(0, 0)):
        packets = [
            Packet(input_port=voq[0], output_port=voq[1], arrival_slot=0, seq=k)
            for k in range(interval.size)
        ]
        return Stripe(stripe_id, voq[0], voq[1], interval, packets)

    def test_same_interval_releases_immediately(self):
        pipeline = VoqPipeline(StripeAssembler(0, 0, DyadicInterval(0, 2)))
        stripe = self.make_stripe(0, DyadicInterval(0, 2))
        assert pipeline.on_stripe_complete(stripe) == [stripe]
        assert pipeline.inflight == 2

    def test_resize_holds_until_clearance(self):
        pipeline = VoqPipeline(StripeAssembler(0, 0, DyadicInterval(0, 2)))
        old = self.make_stripe(0, DyadicInterval(0, 2))
        assert pipeline.on_stripe_complete(old) == [old]
        new = self.make_stripe(1, DyadicInterval(0, 4))
        assert pipeline.on_stripe_complete(new) == []  # held: old in flight
        assert pipeline.on_packet_departed() == []
        released = pipeline.on_packet_departed()  # old fully departed
        assert released == [new]
        assert pipeline.release_interval == DyadicInterval(0, 4)

    def test_mixed_generations_release_in_order(self):
        pipeline = VoqPipeline(StripeAssembler(0, 0, DyadicInterval(0, 2)))
        a = self.make_stripe(0, DyadicInterval(0, 2))
        b = self.make_stripe(1, DyadicInterval(0, 4))
        c = self.make_stripe(2, DyadicInterval(0, 2))
        assert pipeline.on_stripe_complete(a) == [a]
        assert pipeline.on_stripe_complete(b) == []
        assert pipeline.on_stripe_complete(c) == []
        # Drain a's two packets: only b may be released (c is a later
        # generation and must wait for b to clear).
        pipeline.on_packet_departed()
        assert pipeline.on_packet_departed() == [b]
        for _ in range(3):
            assert pipeline.on_packet_departed() == []
        assert pipeline.on_packet_departed() == [c]

    def test_departure_without_inflight_is_error(self):
        pipeline = VoqPipeline(StripeAssembler(0, 0, DyadicInterval(0, 2)))
        with pytest.raises(AssertionError):
            pipeline.on_packet_departed()


class TestAdaptiveMode:
    def test_adaptive_never_reorders(self):
        # Start every VOQ at size 1 (zero-rate assignment) and let the
        # estimator discover the real rates: resizes must not reorder.
        zero = np.zeros((N, N))
        rng = np.random.default_rng(3)
        assignment = StripeIntervalAssignment(zero, rng=rng)
        switch = SprinklersSwitch(
            assignment, adaptive=True, estimator_beta=0.05, sizer_patience=4
        )
        metrics = drive_switch(switch, uniform_matrix(N, 0.6), 8000, drain_slots=6000)
        assert metrics.reordering.late_packets == 0
        assert switch.resizes > 0

    def test_adaptive_sizes_approach_oracle(self):
        matrix = uniform_matrix(N, 0.6)
        zero = np.zeros((N, N))
        assignment = StripeIntervalAssignment(zero, rng=np.random.default_rng(3))
        switch = SprinklersSwitch(
            assignment, adaptive=True, estimator_beta=0.02, sizer_patience=4
        )
        drive_switch(switch, matrix, 15_000)
        oracle = SprinklersSwitch.from_rates(matrix, seed=3)
        matches = sum(
            switch.stripe_size(i, j) == oracle.stripe_size(i, j)
            for i in range(N)
            for j in range(N)
        )
        # EWMA noise straddles the dyadic boundaries, so demand a strong
        # majority rather than exactness.
        assert matches >= 0.6 * N * N

    def test_oracle_mode_never_resizes(self):
        switch = make_switch()
        drive_switch(switch, MATRIX, 3000)
        assert switch.resizes == 0
