"""Behavioral tests for the Concurrent Matching Switch (switching/cms.py)."""

import numpy as np
import pytest

from repro.switching.cms import CmsSwitch
from repro.traffic.matrices import diagonal_matrix, uniform_matrix

from tests.helpers import drive_switch, make_packets


N = 8


class TestCmsOrdering:
    def test_never_reorders_uniform(self):
        switch = CmsSwitch(N)
        metrics = drive_switch(switch, uniform_matrix(N, 0.7), 6000, drain_slots=6000)
        assert metrics.delays.count > 0
        assert metrics.reordering.late_packets == 0

    def test_never_reorders_diagonal(self):
        switch = CmsSwitch(N)
        metrics = drive_switch(
            switch, diagonal_matrix(N, 0.85), 6000, drain_slots=6000
        )
        assert metrics.reordering.late_packets == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_reorders_across_seeds(self, seed):
        switch = CmsSwitch(N)
        metrics = drive_switch(
            switch, uniform_matrix(N, 0.9), 4000, seed=seed, drain_slots=6000
        )
        assert metrics.reordering.late_packets == 0


class TestCmsMechanics:
    def test_conservation(self):
        switch = CmsSwitch(N)
        drive_switch(switch, uniform_matrix(N, 0.7), 1000)
        assert switch.conservation_ok()

    def test_tokens_track_voq_backlog(self):
        # Every unserved packet is backed by exactly one outstanding token.
        switch = CmsSwitch(N)
        drive_switch(switch, uniform_matrix(N, 0.6), 777)
        voq_backlog = sum(bank.occupancy() for bank in switch._voqs)
        assert switch.outstanding_tokens() == voq_backlog

    def test_single_packet_traverses(self):
        switch = CmsSwitch(N)
        switch.step(0, make_packets([(2, 5)]))
        departures = switch.drain(10 * N * N)
        assert len(departures) == 1
        # Token -> grant at next boundary -> transmit -> held one frame ->
        # depart: at least one full frame, at most a few.
        assert N <= departures[0].delay <= 5 * N

    def test_frame_granularity_of_delay(self):
        # CMS delay is frame-pipelined: nothing can depart in under a
        # frame, unlike the baseline switch.
        switch = CmsSwitch(N)
        metrics = drive_switch(
            switch, uniform_matrix(N, 0.5), 3000, drain_slots=5000
        )
        assert metrics.delays.min >= N

    def test_throughput_under_high_load(self):
        switch = CmsSwitch(N)
        metrics = drive_switch(
            switch, uniform_matrix(N, 0.9), 15_000, drain_slots=15_000
        )
        # Single-iteration greedy matching still sustains heavy load on
        # uniform traffic (grants per frame ~ N per intermediate).
        assert switch.departed >= 0.95 * switch.injected

    def test_at_most_one_grant_per_output_per_mid_per_frame(self):
        switch = CmsSwitch(N)
        drive_switch(switch, uniform_matrix(N, 0.9), 500)
        # Post-hoc structural check: per-output FIFOs at an intermediate
        # never hold more than 2 packets (1 releasing + 1 arriving frame).
        for bank in switch._mid_banks:
            for queue in bank.queues:
                assert queue.max_depth <= 2
