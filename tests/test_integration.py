"""Integration tests: the paper's qualitative claims at reduced scale.

These are miniature versions of the §6 experiments with *shape* assertions:
who beats whom, where — the properties the full-scale benchmark harness
regenerates quantitatively.
"""

import numpy as np
import pytest

from repro.analysis.delay_model import expected_queue_length, simulate_chain
from repro.sim.experiment import delay_vs_load_sweep, run_single
from repro.traffic.matrices import diagonal_matrix, uniform_matrix


N = 16
SLOTS = 15_000


@pytest.fixture(scope="module")
def uniform_results():
    """One shared sweep for the shape assertions below (module-scoped)."""
    results = delay_vs_load_sweep(
        "uniform",
        n=N,
        loads=(0.15, 0.5, 0.85),
        num_slots=SLOTS,
        seed=11,
    )
    return {(r.switch_name, r.load): r for r in results}


class TestFig6Shapes:
    def test_ordering_guarantees(self, uniform_results):
        for (name, load), result in uniform_results.items():
            if name == "baseline-lb":
                continue
            assert result.is_ordered, (name, load)

    def test_baseline_reorders_somewhere(self, uniform_results):
        assert any(
            not r.is_ordered
            for (name, _), r in uniform_results.items()
            if name == "baseline-lb"
        )

    def test_baseline_is_lower_envelope(self, uniform_results):
        for load in (0.15, 0.5, 0.85):
            base = uniform_results[("baseline-lb", load)].mean_delay
            for name in ("ufs", "foff", "pf", "sprinklers"):
                assert base < uniform_results[(name, load)].mean_delay

    def test_ufs_worst_at_light_load(self, uniform_results):
        # The UFS hockey stick: at 15% load its full-frame accumulation
        # dominates everyone.
        ufs = uniform_results[("ufs", 0.15)].mean_delay
        for name in ("baseline-lb", "foff", "pf", "sprinklers"):
            assert ufs > uniform_results[(name, 0.15)].mean_delay

    def test_sprinklers_beats_ufs_at_light_load(self, uniform_results):
        # Rate-proportional stripes are much smaller than N at light load.
        assert (
            uniform_results[("sprinklers", 0.15)].mean_delay
            < 0.5 * uniform_results[("ufs", 0.15)].mean_delay
        )

    def test_sprinklers_delay_is_stable_across_loads(self, uniform_results):
        # Paper: "the average delay of our switching algorithm is quite
        # stable under different traffic intensities."
        delays = [
            uniform_results[("sprinklers", load)].mean_delay
            for load in (0.15, 0.5, 0.85)
        ]
        assert max(delays) < 6 * min(delays)

    def test_ufs_delay_falls_with_load(self, uniform_results):
        assert (
            uniform_results[("ufs", 0.15)].mean_delay
            > uniform_results[("ufs", 0.85)].mean_delay
        )

    def test_sprinklers_comparable_to_pf_and_foff(self, uniform_results):
        # "our switch has similar delay performance with PF and FOFF".
        for load in (0.5, 0.85):
            spr = uniform_results[("sprinklers", load)].mean_delay
            for name in ("pf", "foff"):
                other = uniform_results[(name, load)].mean_delay
                assert 0.2 < spr / other < 5.0


class TestFig7Shapes:
    def test_diagonal_pattern_preserves_claims(self):
        results = delay_vs_load_sweep(
            "diagonal",
            n=N,
            loads=(0.2, 0.8),
            num_slots=SLOTS,
            seed=13,
        )
        table = {(r.switch_name, r.load): r for r in results}
        for (name, load), result in table.items():
            if name != "baseline-lb":
                assert result.is_ordered, (name, load)
        assert (
            table[("sprinklers", 0.2)].mean_delay
            < table[("ufs", 0.2)].mean_delay
        )
        assert (
            table[("baseline-lb", 0.8)].mean_delay
            < table[("sprinklers", 0.8)].mean_delay
        )


class TestThroughput:
    @pytest.mark.parametrize("name", ["sprinklers", "ufs", "foff", "pf"])
    def test_high_load_throughput(self, name):
        # At 90% load every stable switch must deliver ~ all offered
        # traffic over a long run (full throughput claim).
        matrix = uniform_matrix(N, 0.9)
        result = run_single(name, matrix, 25_000, seed=2, load_label=0.9)
        assert result.departed > 0.93 * result.injected


class TestAnalysisVsSimulation:
    def test_markov_chain_simulation_matches_closed_form(self):
        n, rho = 16, 0.8
        mc = simulate_chain(n, rho, 300_000, np.random.default_rng(3))
        assert mc == pytest.approx(expected_queue_length(n, rho), rel=0.2)

    def test_placement_loads_predict_simulation_stability(self):
        # An assignment whose max queue load is below 1/N must yield a
        # simulation whose backlog does not grow linearly.
        from repro.core.sprinklers_switch import SprinklersSwitch

        matrix = diagonal_matrix(N, 0.9)
        switch = SprinklersSwitch.from_rates(matrix, seed=4)
        assert switch.assignment.max_queue_load() < 1.0 / N
        result = run_single("sprinklers", matrix, 20_000, seed=4, load_label=0.9)
        assert result.departed > 0.9 * result.injected
