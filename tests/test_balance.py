"""Tests for the empirical balance study (analysis/balance.py)."""

import numpy as np
import pytest

from repro.analysis.balance import (
    balance_profile,
    bound_vs_empirical_rows,
    empirical_overload_probability,
)
from repro.analysis.stability import theorem1_threshold, worst_case_rates
from repro.core.interval_assignment import PlacementMode
from repro.traffic.matrices import diagonal_matrix, uniform_matrix


def uniform_family(n, rho, rng):
    return uniform_matrix(n, rho)


def diagonal_family(n, rho, rng):
    return diagonal_matrix(n, rho)


class TestBalanceProfile:
    def test_uniform_workload_is_perfectly_balanced(self, rng):
        # Uniform rates + any Latin-square placement: all queues equal.
        profile = balance_profile(uniform_matrix(16, 0.9), 20, rng)
        assert profile["overload_fraction"] == 0.0
        assert profile["max_worst_load"] < profile["service_rate"]

    def test_below_threshold_never_overloads(self, rng):
        n = 16
        matrix = np.zeros((n, n))
        matrix[0, :] = worst_case_rates(n, scale=0.99)
        profile = balance_profile(matrix, 50, rng)
        assert profile["overload_fraction"] == 0.0

    def test_identity_mode_supported(self, rng):
        profile = balance_profile(
            uniform_matrix(8, 0.5), 3, rng, mode=PlacementMode.IDENTITY
        )
        assert profile["overload_fraction"] == 0.0

    def test_percentiles_ordered(self, rng):
        profile = balance_profile(diagonal_matrix(16, 0.9), 30, rng)
        assert (
            profile["mean_worst_load"]
            <= profile["p95_worst_load"]
            <= profile["max_worst_load"]
        )

    def test_trials_validated(self, rng):
        with pytest.raises(ValueError):
            balance_profile(uniform_matrix(8, 0.5), 0, rng)


class TestEmpiricalOverload:
    def test_structured_workloads_beat_the_bound(self, rng):
        # The paper's remark: actual overload probabilities are far below
        # the worst-case bounds.  At N=16 and rho=0.9 the bound is vacuous
        # (>1) while diagonal traffic measures zero overloads.
        empirical = empirical_overload_probability(
            diagonal_family, 16, 0.9, trials=40, rng=rng
        )
        assert empirical == 0.0

    def test_rows_structure(self, rng):
        rows = bound_vs_empirical_rows(
            uniform_family, 16, rhos=(0.7, 0.9), trials=10, rng=rng
        )
        assert len(rows) == 2
        for row in rows:
            assert row["per_queue_bound"] <= row["switch_wide_bound"] + 1e-12
            assert 0.0 <= row["empirical_switch_wide"] <= 1.0

    def test_below_threshold_row_is_zero_everywhere(self, rng):
        rows = bound_vs_empirical_rows(
            uniform_family,
            16,
            rhos=(theorem1_threshold(16) - 0.05,),
            trials=10,
            rng=rng,
        )
        assert rows[0]["per_queue_bound"] == 0.0
        assert rows[0]["empirical_switch_wide"] == 0.0
