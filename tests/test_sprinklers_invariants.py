"""The headline Sprinklers invariants, verified by direct measurement.

Paper §3.2: "a Sprinklers switch ensures that every stripe of packets
departs from its input port and arrives at its output port both 'in one
burst' (in consecutive time slots)", and packet reordering therefore
cannot happen within any VOQ.

These tests instrument the switch (``record_stripe_events=True``) and check
those properties literally, across sizes, loads, traffic shapes and seeds.
"""

import numpy as np
import pytest

from repro.core.sprinklers_switch import SprinklersSwitch
from repro.traffic.matrices import (
    diagonal_matrix,
    lognormal_matrix,
    permutation_matrix,
    uniform_matrix,
)

from tests.helpers import assert_consecutive, drive_switch


def run_instrumented(matrix, slots, seed=1, traffic_seed=9, **kwargs):
    switch = SprinklersSwitch.from_rates(
        matrix, seed=seed, record_stripe_events=True, **kwargs
    )
    metrics = drive_switch(
        switch, matrix, slots, seed=traffic_seed, drain_slots=80 * switch.n
    )
    return switch, metrics


def check_stripe_continuity(switch):
    """Every recorded stripe must be transmitted and received in bursts."""
    assert switch.stripe_tx, "test produced no full stripes; pointless"
    for stripe_id, events in switch.stripe_tx.items():
        tx_slots = [slot for slot, _ in events]
        tx_ports = [port for _, port in events]
        assert_consecutive(tx_slots, f"stripe {stripe_id} tx slots")
        assert_consecutive(tx_ports, f"stripe {stripe_id} tx ports")
    for stripe_id, rx_slots in switch.stripe_rx.items():
        assert_consecutive(rx_slots, f"stripe {stripe_id} rx slots")


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_continuity_across_sizes(n):
    matrix = uniform_matrix(n, 0.7)
    switch, metrics = run_instrumented(matrix, 3000)
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)


@pytest.mark.parametrize("load", [0.2, 0.5, 0.8, 0.95])
def test_continuity_across_loads(load):
    matrix = uniform_matrix(8, load)
    switch, metrics = run_instrumented(matrix, 4000)
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_continuity_across_placements(seed):
    matrix = diagonal_matrix(8, 0.8)
    switch, metrics = run_instrumented(matrix, 3000, seed=seed)
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)


def test_continuity_under_skewed_rates(rng):
    # Log-normal rates produce a wide mixture of stripe sizes — the
    # stress case for LSF interleaving.
    matrix = lognormal_matrix(16, 0.85, sigma=1.5, rng=np.random.default_rng(4))
    switch, metrics = run_instrumented(matrix, 6000)
    sizes = {
        switch.stripe_size(i, j) for i in range(16) for j in range(16)
    }
    assert len(sizes) >= 3, "workload failed to produce mixed stripe sizes"
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)


def test_continuity_under_permutation_traffic():
    # One hot VOQ per input: full-width stripes, heavy per-VOQ bursts.
    matrix = permutation_matrix(8, 0.9, perm=[(i * 3) % 8 for i in range(8)])
    switch, metrics = run_instrumented(matrix, 4000)
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)


def test_stripes_served_whole_at_input():
    # Each stripe's packets must cross fabric 1 exactly once per port of
    # its interval — no duplication, no loss.
    matrix = uniform_matrix(8, 0.6)
    switch, _ = run_instrumented(matrix, 3000)
    for stripe_id, events in switch.stripe_tx.items():
        assert len(events) == len({port for _, port in events})


def test_rx_follows_tx_by_interval_size():
    # A packet sent at slot t arrives at the output no earlier than t+1.
    matrix = uniform_matrix(8, 0.6)
    switch, _ = run_instrumented(matrix, 2000)
    for stripe_id, events in switch.stripe_tx.items():
        rx = switch.stripe_rx.get(stripe_id)
        if rx is None:
            continue  # still buffered at drain cutoff
        first_tx = events[0][0]
        assert rx[0] >= first_tx + 1


def test_adaptive_resizing_keeps_invariants():
    # Rate adaptation with clearance must preserve burst continuity even
    # while stripe sizes change mid-run.
    n = 8
    matrix = uniform_matrix(n, 0.6)
    from repro.core.interval_assignment import StripeIntervalAssignment

    assignment = StripeIntervalAssignment(
        np.zeros((n, n)), rng=np.random.default_rng(2)
    )
    switch = SprinklersSwitch(
        assignment,
        adaptive=True,
        estimator_beta=0.05,
        sizer_patience=3,
        record_stripe_events=True,
    )
    metrics = drive_switch(switch, matrix, 8000, drain_slots=6000)
    assert switch.resizes > 0
    assert metrics.reordering.late_packets == 0
    check_stripe_continuity(switch)
