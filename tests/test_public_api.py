"""The public API surface: imports, exports, and the README's quickstart."""

import importlib

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.switching",
            "repro.traffic",
            "repro.analysis",
            "repro.sim",
            "repro.figures",
            "repro.cli",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import SprinklersSwitch, TrafficGenerator, simulate
        from repro.traffic.matrices import uniform_matrix

        matrix = uniform_matrix(32, 0.8)
        switch = SprinklersSwitch.from_rates(matrix, seed=1)
        traffic = TrafficGenerator(matrix, np.random.default_rng(2))
        result = simulate(switch, traffic, num_slots=3000, load_label=0.8)
        assert result.is_ordered
        assert result.mean_delay > 0
