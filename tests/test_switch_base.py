"""Unit tests for the two-stage switch protocol (switching/switch_base.py)."""

import pytest

from repro.switching.baseline import BaselineLoadBalancedSwitch
from repro.switching.packet import Packet
from repro.switching.switch_base import TwoStageSwitch

from tests.helpers import make_packets


class TestSlotProtocol:
    def test_slots_must_advance_by_one(self):
        switch = BaselineLoadBalancedSwitch(4)
        switch.step(0, [])
        with pytest.raises(ValueError):
            switch.step(2, [])

    def test_arrival_slot_validated(self):
        switch = BaselineLoadBalancedSwitch(4)
        stale = Packet(input_port=0, output_port=0, arrival_slot=5)
        with pytest.raises(ValueError):
            switch.step(0, [stale])

    def test_ports_validated(self):
        switch = BaselineLoadBalancedSwitch(4)
        bad = Packet(input_port=9, output_port=0, arrival_slot=0)
        with pytest.raises(ValueError):
            switch.step(0, [bad])

    def test_single_packet_delay_bounds(self):
        # Arrive slot 0, cross fabric 1 at slot 0, eligible at the
        # intermediate at slot 1; fabric 2 reaches the right output within
        # the next N slots, so 1 <= delay <= 2N.
        n = 4
        switch = BaselineLoadBalancedSwitch(n)
        (packet,) = make_packets([(0, 0)])
        assert switch.step(0, [packet]) == []
        departures = switch.drain(10 * n)
        assert len(departures) == 1
        assert 1 <= departures[0].delay <= 2 * n

    def test_one_packet_per_connection(self):
        # With N packets queued at one input, exactly one leaves per slot.
        n = 4
        switch = BaselineLoadBalancedSwitch(n)
        packets = [
            Packet(input_port=0, output_port=j, arrival_slot=0, seq=0)
            for j in range(n)
        ]
        switch.step(0, packets)
        total = len(switch.drain(10 * n))
        assert total == n

    def test_counters(self):
        switch = BaselineLoadBalancedSwitch(4)
        switch.step(0, make_packets([(0, 1), (1, 2)]))
        assert switch.injected == 2
        switch.drain(50)
        assert switch.departed == 2
        assert switch.in_flight() == 0

    def test_conservation_holds_mid_flight(self):
        switch = BaselineLoadBalancedSwitch(4)
        switch.step(0, make_packets([(0, 1), (1, 2), (2, 3)]))
        assert switch.conservation_ok()
        switch.step(1, [])
        assert switch.conservation_ok()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BaselineLoadBalancedSwitch(0)

    def test_run_convenience(self):
        switch = BaselineLoadBalancedSwitch(4)
        stream = [(0, make_packets([(0, 1)])), (1, []), (2, []), (3, [])]
        departures = switch.run(stream)
        assert len(departures) == 1

    def test_base_hooks_are_abstract(self):
        switch = TwoStageSwitch(4)
        with pytest.raises(NotImplementedError):
            switch.step(0, make_packets([(0, 0)]))


class TestDrain:
    def test_drain_stops_when_quiescent(self):
        switch = BaselineLoadBalancedSwitch(4)
        switch.step(0, make_packets([(0, 0)]))
        switch.drain(1000)
        # Quiescent well before 1000 slots; time advanced but bounded.
        assert switch.now < 200

    def test_drain_returns_departures(self):
        switch = BaselineLoadBalancedSwitch(4)
        switch.step(0, make_packets([(0, 0), (1, 1)]))
        departed = switch.drain(100)
        assert len(departed) == 2
