"""Tests for discrete-time queueing utilities (analysis/queueing.py)."""

import numpy as np
import pytest

from repro.analysis.delay_model import expected_queue_length
from repro.analysis.queueing import GeoGeo1, batch_queue_mean, lindley_waits


class TestLindley:
    def test_known_sequence(self):
        # arrivals 1 apart, service 2 -> waits build by 1 per customer.
        waits = lindley_waits([1, 1, 1], [2, 2, 2])
        assert list(waits) == [0.0, 1.0, 2.0, 3.0]

    def test_idle_gap_resets(self):
        waits = lindley_waits([1, 10, 1], [2, 2, 2])
        assert waits[2] == 0.0  # the long gap drains the queue

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            lindley_waits([1, 2], [1])

    def test_nonnegative(self, rng):
        inter = rng.exponential(2.0, 200)
        serv = rng.exponential(1.0, 200)
        assert (lindley_waits(inter, serv) >= 0).all()


class TestGeoGeo1:
    def test_closed_form_matches_simulation(self, rng):
        for p, s in [(0.3, 0.5), (0.1, 0.2)]:
            q = GeoGeo1(p, s)
            mc = q.simulate_mean_queue(300_000, rng, warmup=20_000)
            assert mc == pytest.approx(q.mean_queue_length(), rel=0.1)

    def test_utilization(self):
        assert GeoGeo1(0.2, 0.4).utilization == pytest.approx(0.5)

    def test_heavy_traffic_blowup(self):
        light = GeoGeo1(0.1, 0.5).mean_queue_length()
        heavy = GeoGeo1(0.48, 0.5).mean_queue_length()
        assert heavy > 10 * light

    def test_rejects_unstable(self):
        with pytest.raises(ValueError):
            GeoGeo1(0.5, 0.5)
        with pytest.raises(ValueError):
            GeoGeo1(0.6, 0.5)
        with pytest.raises(ValueError):
            GeoGeo1(-0.1, 0.5)


class TestBatchQueue:
    def test_matches_delay_model_special_case(self):
        # A in {0, N} w.p. {1 - rho/N, rho/N} is exactly the section-5 chain.
        n, rho = 16, 0.8
        pmf = [0.0] * (n + 1)
        pmf[0] = 1 - rho / n
        pmf[n] = rho / n
        assert batch_queue_mean(pmf) == pytest.approx(
            expected_queue_length(n, rho)
        )

    def test_bernoulli_arrivals_have_no_queue(self):
        # A in {0, 1}: at most one arrival and one service per slot.
        assert batch_queue_mean([0.4, 0.6]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_queue_mean([0.5, 0.4])  # doesn't sum to 1
        with pytest.raises(ValueError):
            batch_queue_mean([0.0, 1.0])  # E[A] = 1, unstable
