"""Tests for the multiprocess sweep runner (sim/parallel.py)."""

import pytest

from repro.sim.experiment import delay_vs_load_sweep
from repro.sim.parallel import (
    FailedJob,
    SweepError,
    SweepJob,
    parallel_delay_sweep,
    run_jobs,
)
from repro.traffic.matrices import uniform_matrix


class TestRunJobs:
    def test_inline_single_worker(self):
        jobs = [
            SweepJob("load-balanced", uniform_matrix(4, 0.5), 400, 1, 0.5),
            SweepJob("sprinklers", uniform_matrix(4, 0.5), 400, 1, 0.5),
        ]
        results = run_jobs(jobs, max_workers=1)
        assert [r.switch_name for r in results] == ["baseline-lb", "sprinklers"]

    def test_pool_matches_inline(self):
        jobs = [
            SweepJob("ufs", uniform_matrix(4, 0.6), 600, 2, 0.6),
            SweepJob("pf", uniform_matrix(4, 0.6), 600, 2, 0.6),
            SweepJob("foff", uniform_matrix(4, 0.6), 600, 2, 0.6),
        ]
        inline = run_jobs(jobs, max_workers=1)
        pooled = run_jobs(jobs, max_workers=2)
        for a, b in zip(inline, pooled):
            assert a.switch_name == b.switch_name
            assert a.mean_delay == b.mean_delay
            assert a.measured_packets == b.measured_packets

    def test_switch_params_reach_the_run(self):
        """Regression: SweepJob dropped switch_params entirely, so
        parameterized switches (PF threshold) could not be swept or
        replicated in parallel at all."""
        from repro.sim.experiment import run_single

        matrix = uniform_matrix(4, 0.6)
        jobs = [
            SweepJob(
                "pf", matrix, 600, 2, 0.6, switch_params={"threshold": t}
            )
            for t in (1, 4)
        ]
        inline = run_jobs(jobs, max_workers=1)
        pooled = run_jobs(jobs, max_workers=2)
        for job, a, b in zip(jobs, inline, pooled):
            want = run_single(
                "pf", matrix, 600, seed=2, load_label=0.6,
                keep_samples=False,
                switch_params=job.switch_params,
            )
            assert a.mean_delay == want.mean_delay
            assert b.mean_delay == want.mean_delay
        # Thresholds 1 and 4 genuinely produce different dynamics, so the
        # parameter demonstrably arrived (it is not defaulted away).
        assert inline[0].mean_delay != inline[1].mean_delay

    def test_switch_params_default_cache_keys_unchanged(self, tmp_path):
        """Default-parameter jobs must hit the same store entries as
        before the switch_params field existed (key only present when
        non-default)."""
        from repro.sim.experiment import run_single, single_run_params

        matrix = uniform_matrix(4, 0.6)
        params_none = single_run_params(
            "pf", matrix, 600, 2, 0.6, 0.1, False, "object", None, None
        )
        params_empty = single_run_params(
            "pf", matrix, 600, 2, 0.6, 0.1, False, "object", None, {}
        )
        assert params_none == params_empty
        assert "switch_params" not in params_none
        custom = single_run_params(
            "pf", matrix, 600, 2, 0.6, 0.1, False, "object", None,
            {"threshold": 3},
        )
        assert custom["switch_params"] == {"threshold": 3}


class TestFailureCapture:
    """One bad cell never kills a sweep; its identity is preserved."""

    def _jobs(self):
        matrix = uniform_matrix(4, 0.5)
        return [
            SweepJob("sprinklers", matrix, 400, 0, 0.5),
            SweepJob("nonesuch", matrix, 400, 0, 0.5),
            SweepJob("ufs", matrix, 400, 0, 0.5),
        ]

    def test_record_returns_failures_in_place(self):
        results = run_jobs(self._jobs(), max_workers=2, on_error="record")
        assert len(results) == 3
        assert results[0].switch_name == "sprinklers"
        assert results[2].switch_name == "ufs"
        failed = results[1]
        assert isinstance(failed, FailedJob)
        assert failed.job.switch_name == "nonesuch"
        assert "unknown switch" in failed.error
        assert "ValueError" in failed.traceback
        assert "nonesuch" in failed.describe()

    def test_raise_carries_records_after_every_job_ran(self):
        with pytest.raises(SweepError) as excinfo:
            run_jobs(self._jobs(), max_workers=2)
        err = excinfo.value
        assert len(err.failures) == 1
        assert err.failures[0].job.switch_name == "nonesuch"
        assert "1 of 3 sweep jobs failed" in str(err)
        assert "unknown switch" in str(err)
        assert "Traceback" in str(err)  # first traceback rides along

    def test_inline_path_matches_pool_path(self):
        inline = run_jobs(self._jobs(), max_workers=1, on_error="record")
        assert isinstance(inline[1], FailedJob)
        assert "unknown switch" in inline[1].error

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_jobs(self._jobs(), on_error="ignore")

    def test_parallel_sweep_passes_on_error_through(self):
        results = parallel_delay_sweep(
            "uniform",
            n=4,
            loads=(0.5,),
            num_slots=300,
            switches=("sprinklers", "nonesuch"),
            max_workers=2,
            on_error="record",
        )
        assert results[0].switch_name == "sprinklers"
        assert isinstance(results[1], FailedJob)


class TestParallelSweep:
    def test_matches_sequential_sweep(self):
        kwargs = dict(
            n=4, loads=(0.4, 0.7), num_slots=500,
            switches=("load-balanced", "sprinklers"), seed=3,
        )
        sequential = delay_vs_load_sweep("uniform", **kwargs)
        parallel = parallel_delay_sweep(
            "uniform", max_workers=2, **kwargs
        )
        assert len(sequential) == len(parallel)
        seq_map = {(r.switch_name, r.load): r.mean_delay for r in sequential}
        par_map = {(r.switch_name, r.load): r.mean_delay for r in parallel}
        assert seq_map == par_map

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            parallel_delay_sweep("bogus")
