"""Tests for the multiprocess sweep runner (sim/parallel.py)."""

import pytest

from repro.sim.experiment import delay_vs_load_sweep
from repro.sim.parallel import SweepJob, parallel_delay_sweep, run_jobs
from repro.traffic.matrices import uniform_matrix


class TestRunJobs:
    def test_inline_single_worker(self):
        jobs = [
            SweepJob("load-balanced", uniform_matrix(4, 0.5), 400, 1, 0.5),
            SweepJob("sprinklers", uniform_matrix(4, 0.5), 400, 1, 0.5),
        ]
        results = run_jobs(jobs, max_workers=1)
        assert [r.switch_name for r in results] == ["baseline-lb", "sprinklers"]

    def test_pool_matches_inline(self):
        jobs = [
            SweepJob("ufs", uniform_matrix(4, 0.6), 600, 2, 0.6),
            SweepJob("pf", uniform_matrix(4, 0.6), 600, 2, 0.6),
            SweepJob("foff", uniform_matrix(4, 0.6), 600, 2, 0.6),
        ]
        inline = run_jobs(jobs, max_workers=1)
        pooled = run_jobs(jobs, max_workers=2)
        for a, b in zip(inline, pooled):
            assert a.switch_name == b.switch_name
            assert a.mean_delay == b.mean_delay
            assert a.measured_packets == b.measured_packets


class TestParallelSweep:
    def test_matches_sequential_sweep(self):
        kwargs = dict(
            n=4, loads=(0.4, 0.7), num_slots=500,
            switches=("load-balanced", "sprinklers"), seed=3,
        )
        sequential = delay_vs_load_sweep("uniform", **kwargs)
        parallel = parallel_delay_sweep(
            "uniform", max_workers=2, **kwargs
        )
        assert len(sequential) == len(parallel)
        seq_map = {(r.switch_name, r.load): r.mean_delay for r in sequential}
        par_map = {(r.switch_name, r.load): r.mean_delay for r in parallel}
        assert seq_map == par_map

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            parallel_delay_sweep("bogus")
