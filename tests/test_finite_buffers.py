"""Tests for finite-buffer (drop-tail) operation across switches.

The paper analyzes infinite buffers; real line cards do not have them.
Finite-buffer mode must (a) drop precisely when the configured structure
is full, (b) keep the conservation equation balanced through the
``dropped`` counter, and (c) never compromise the ordering guarantee of
the surviving packets.
"""

import numpy as np
import pytest

from repro.core.sprinklers_switch import SprinklersSwitch
from repro.switching.baseline import BaselineLoadBalancedSwitch
from repro.switching.hashing import TcpHashingSwitch
from repro.switching.ufs import UfsSwitch
from repro.traffic.matrices import uniform_matrix

from tests.helpers import drive_switch, make_packets


N = 8


class TestBaselineBuffers:
    def test_burst_beyond_buffer_is_dropped(self):
        switch = BaselineLoadBalancedSwitch(N, input_buffer=4)
        switch.step(0, make_packets([(0, j % N) for j in range(10)]))
        # Arrivals are accepted before stage-1 service runs, so exactly
        # the buffer's worth (4) survives the 10-packet burst.
        assert switch.dropped == 10 - 4
        assert switch.conservation_ok()

    def test_no_drops_when_unconstrained(self):
        switch = BaselineLoadBalancedSwitch(N)
        drive_switch(switch, uniform_matrix(N, 0.9), 3000)
        assert switch.dropped == 0

    def test_drops_counted_out_of_in_flight(self):
        switch = BaselineLoadBalancedSwitch(N, input_buffer=2)
        switch.step(0, make_packets([(0, 0)] * 6))
        switch.drain(10 * N)
        assert switch.in_flight() == 0
        assert switch.injected == switch.departed + switch.dropped

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineLoadBalancedSwitch(N, input_buffer=0)


class TestHashingBuffers:
    def test_oversubscription_now_drops_instead_of_growing(self):
        # The instability demo, buffered: the melted-down port now sheds
        # load instead of queueing forever.
        switch = TcpHashingSwitch(N, salt=0, per_flow=False, input_buffer=32)
        probe = make_packets([(0, j) for j in range(N)])
        target = switch.assigned_port(probe[0])
        victims = [
            p.output_port for p in probe if switch.assigned_port(p) == target
        ]
        matrix = np.zeros((N, N))
        for j in victims:
            matrix[0][j] = 0.8 / len(victims)
        drive_switch(switch, matrix, 6000)
        assert switch.max_input_backlog() <= 32
        assert switch.dropped > 1000
        assert switch.conservation_ok()


class TestUfsBuffers:
    def test_input_cap_enforced(self):
        switch = UfsSwitch(N, input_buffer=N)
        switch.step(0, make_packets([(0, 0)] * (2 * N)))
        # The input's memory holds one frame's worth; the rest drop (the
        # frame only leaves the card as it is served, one slot at a time).
        assert switch.dropped == N
        assert switch.conservation_ok()

    def test_cap_must_fit_a_frame(self):
        with pytest.raises(ValueError):
            UfsSwitch(N, input_buffer=N - 1)

    def test_ordering_survives_drops(self):
        # A tight buffer under heavy load must shed packets, and the
        # survivors must still depart in order.
        switch = UfsSwitch(N, input_buffer=2 * N)
        metrics = drive_switch(
            switch, uniform_matrix(N, 0.95), 6000, drain_slots=5000
        )
        assert switch.dropped > 0
        assert metrics.reordering.late_packets == 0
        assert switch.conservation_ok()


class TestSprinklersBuffers:
    def test_shared_input_cap(self):
        switch = SprinklersSwitch.from_rates(
            uniform_matrix(N, 0.8), seed=1, input_buffer=16
        )
        metrics = drive_switch(switch, uniform_matrix(N, 0.95), 4000)
        assert max(switch._input_occupancy) <= 16
        assert metrics.reordering.late_packets == 0
        assert switch.conservation_ok()

    def test_small_buffer_drops_under_pressure(self):
        switch = SprinklersSwitch.from_rates(
            uniform_matrix(N, 0.9), seed=1, input_buffer=4
        )
        drive_switch(switch, uniform_matrix(N, 0.9), 4000)
        assert switch.dropped > 0

    def test_unconstrained_mode_never_drops(self):
        switch = SprinklersSwitch.from_rates(uniform_matrix(N, 0.9), seed=1)
        drive_switch(switch, uniform_matrix(N, 0.9), 3000)
        assert switch.dropped == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SprinklersSwitch.from_rates(
                uniform_matrix(N, 0.5), seed=0, input_buffer=0
            )
