"""Extended workloads: bursty arrivals and application-flow hashing.

The paper's evaluation uses Bernoulli i.i.d. arrivals; these tests push
beyond it (a) to verify that Sprinklers' ordering guarantee — which is
structural, not statistical — survives bursty arrivals, and (b) to exercise
the per-application-flow hashing mode of the TCP-hashing baseline.
"""

import numpy as np
import pytest

from repro.core.sprinklers_switch import SprinklersSwitch
from repro.sim.metrics import SimulationMetrics
from repro.switching.hashing import TcpHashingSwitch
from repro.traffic.arrivals import OnOffArrivals
from repro.traffic.generator import FlowModel, TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def run_with_traffic(switch, traffic, slots, drain=5000):
    metrics = SimulationMetrics(keep_samples=False)
    for slot, packets in traffic.slots(slots):
        for packet in switch.step(slot, packets):
            metrics.observe_departure(packet, measure=True)
    for packet in switch.drain(drain):
        metrics.observe_departure(packet, measure=True)
    return metrics


class TestBurstyArrivals:
    def make_bursty_traffic(self, n, seed):
        rng = np.random.default_rng(seed)
        onoff = OnOffArrivals(
            n, peak_rate=0.9, mean_on=40, mean_off=20, rng=rng
        )
        # Matrix sets destinations and (via its rates) oracle stripe
        # sizes; the custom arrival process sets the burstiness.
        matrix = uniform_matrix(n, min(0.95, onoff.mean_rate))
        return TrafficGenerator(matrix, rng, arrivals=onoff), matrix

    def test_sprinklers_ordering_survives_bursts(self):
        n = 8
        traffic, matrix = self.make_bursty_traffic(n, seed=4)
        switch = SprinklersSwitch.from_rates(matrix, seed=4)
        metrics = run_with_traffic(switch, traffic, 10_000)
        assert metrics.delays.count > 0
        assert metrics.reordering.late_packets == 0

    def test_bursty_delay_exceeds_bernoulli(self):
        n = 8
        traffic, matrix = self.make_bursty_traffic(n, seed=5)
        bursty_switch = SprinklersSwitch.from_rates(matrix, seed=5)
        bursty = run_with_traffic(bursty_switch, traffic, 20_000)

        smooth_traffic = TrafficGenerator(matrix, np.random.default_rng(5))
        smooth_switch = SprinklersSwitch.from_rates(matrix, seed=5)
        smooth = run_with_traffic(smooth_switch, smooth_traffic, 20_000)
        # Same mean rate, heavier tails: burstiness must cost delay
        # somewhere past the stripe-assembly floor.
        assert bursty.delays.mean > 0.9 * smooth.delays.mean


class TestPerFlowHashing:
    def make_flow_traffic(self, n, seed, flows_per_voq=8):
        rng = np.random.default_rng(seed)
        model = FlowModel(
            flows_per_voq=flows_per_voq,
            zipf_exponent=1.2,
            rng=np.random.default_rng(seed + 1),
        )
        matrix = uniform_matrix(n, 0.6)
        return TrafficGenerator(matrix, rng, flow_model=model)

    def test_flow_level_order_is_kept(self):
        # Per-VOQ sequence numbers restricted to one flow are still
        # increasing at arrival, so a per-flow inversion at departure is a
        # genuine flow-level reorder — hashing must never produce one.
        n = 8
        switch = TcpHashingSwitch(n, salt=2, per_flow=True)
        traffic = self.make_flow_traffic(n, seed=6)
        last_seen = {}
        violations = 0

        def check(departed):
            nonlocal violations
            key = departed.flow_id
            if key in last_seen and departed.seq < last_seen[key]:
                violations += 1
            last_seen[key] = departed.seq

        for slot, packets in traffic.slots(8000):
            for departed in switch.step(slot, packets):
                check(departed)
        for departed in switch.drain(4000):
            check(departed)
        assert last_seen, "no departures observed"
        assert violations == 0

    def test_voq_level_order_can_break(self):
        # Flows of one VOQ hash to different intermediate ports with
        # different delays: per-flow order holds, per-VOQ order need not.
        n = 8
        switch = TcpHashingSwitch(n, salt=3, per_flow=True)
        traffic = self.make_flow_traffic(n, seed=7)
        metrics = run_with_traffic(switch, traffic, 10_000)
        # Not asserted == 0: this is exactly hashing's VOQ-level weakness.
        # We assert the detector at least observed plenty of traffic, and
        # record whether VOQ-level inversions occurred.
        assert metrics.delays.count > 1000
