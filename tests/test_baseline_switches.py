"""Behavioral tests for the baseline switches (baseline, UFS, FOFF, PF, hashing, OQ)."""

import numpy as np
import pytest

from repro.switching.baseline import BaselineLoadBalancedSwitch
from repro.switching.foff import FoffSwitch
from repro.switching.hashing import TcpHashingSwitch
from repro.switching.output_queued import OutputQueuedSwitch
from repro.switching.pf import PaddedFramesSwitch
from repro.switching.ufs import UfsSwitch
from repro.traffic.matrices import uniform_matrix

from tests.helpers import drive_switch, make_packets


N = 8
MATRIX = uniform_matrix(N, 0.7)
SLOTS = 4000


class TestBaselineLoadBalanced:
    def test_full_delivery_and_conservation(self):
        switch = BaselineLoadBalancedSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=5000)
        assert switch.in_flight() == 0
        assert switch.conservation_ok()
        assert metrics.delays.count == switch.injected

    def test_reorders_under_load(self):
        switch = BaselineLoadBalancedSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS)
        assert metrics.reordering.late_packets > 0

    def test_low_delay(self):
        switch = BaselineLoadBalancedSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=5000)
        # The baseline is the delay lower envelope among two-stage switches:
        # O(N) queueing, far below the frame-based switches' O(N^2/rho).
        assert metrics.delays.mean < 5 * N


class TestUfs:
    def test_never_reorders(self):
        switch = UfsSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=5000)
        assert metrics.reordering.late_packets == 0

    def test_conservation(self):
        switch = UfsSwitch(N)
        drive_switch(switch, MATRIX, SLOTS)
        assert switch.conservation_ok()

    def test_only_full_frames_depart(self):
        # With fewer than N packets in a VOQ, nothing ever leaves.
        switch = UfsSwitch(N)
        switch.step(0, make_packets([(0, 0)] * (N - 1)))
        assert switch.drain(20 * N) == []
        assert switch.buffered_packets() == N - 1

    def test_full_frame_departs_completely(self):
        switch = UfsSwitch(N)
        switch.step(0, make_packets([(0, 0)] * N))
        departures = switch.drain(40 * N)
        assert len(departures) == N
        assert [p.seq for p in departures] == list(range(N))

    def test_light_load_delay_reflects_accumulation(self):
        # At light load the dominant term is waiting for a frame to fill:
        # the average packet waits for (N-1)/2 successors at VOQ rate
        # load/N, i.e. about N(N-1)/(2 load) slots.
        load = 0.2
        switch = UfsSwitch(N)
        metrics = drive_switch(switch, uniform_matrix(N, load), 30_000)
        accumulation_mean = N * (N - 1) / (2.0 * load)  # 140 slots
        assert accumulation_mean * 0.7 < metrics.delays.mean < accumulation_mean * 2.0


class TestFoff:
    def test_output_stream_in_order(self):
        switch = FoffSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=5000)
        assert metrics.reordering.late_packets == 0

    def test_resequencers_do_real_work(self):
        # FOFF relies on resequencing: under load the buffers must have
        # held packets at some point (otherwise the test is vacuous).
        switch = FoffSwitch(N)
        drive_switch(switch, MATRIX, SLOTS)
        assert switch.max_resequencer_occupancy() > 0

    def test_resequencer_bound_order_n_squared(self):
        switch = FoffSwitch(N)
        drive_switch(switch, MATRIX, SLOTS)
        # The paper bounds reordering by O(N^2); allow a small constant.
        assert switch.max_resequencer_occupancy() <= 4 * N * N

    def test_partial_frames_depart_without_full_frame(self):
        switch = FoffSwitch(N)
        switch.step(0, make_packets([(0, 0)] * 3))
        departures = switch.drain(40 * N)
        assert len(departures) == 3  # unlike UFS

    def test_conservation_includes_resequencers(self):
        switch = FoffSwitch(N)
        drive_switch(switch, MATRIX, 500)
        assert switch.conservation_ok()


class TestPaddedFrames:
    def test_never_reorders(self):
        switch = PaddedFramesSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=5000)
        assert metrics.reordering.late_packets == 0

    def test_pads_below_full_frames(self):
        switch = PaddedFramesSwitch(N, threshold=2)
        switch.step(0, make_packets([(0, 0)] * 3))
        departures = switch.drain(40 * N)
        real = [p for p in departures if not p.fake]
        fakes = [p for p in departures if p.fake]
        assert len(real) == 3
        assert len(fakes) == N - 3
        assert switch.fakes_injected == N - 3

    def test_below_threshold_waits(self):
        switch = PaddedFramesSwitch(N, threshold=4)
        switch.step(0, make_packets([(0, 0)] * 3))
        departures = switch.drain(40 * N)
        assert departures == []

    def test_padding_overhead_reported(self):
        switch = PaddedFramesSwitch(N, threshold=2)
        drive_switch(switch, uniform_matrix(N, 0.3), SLOTS)
        assert 0.0 < switch.padding_overhead() < 1.0

    def test_conservation_ignores_fakes(self):
        switch = PaddedFramesSwitch(N, threshold=2)
        drive_switch(switch, MATRIX, 500)
        assert switch.conservation_ok()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PaddedFramesSwitch(N, threshold=0)
        with pytest.raises(ValueError):
            PaddedFramesSwitch(N, threshold=N + 1)


class TestTcpHashing:
    def test_flow_level_ordering(self):
        switch = TcpHashingSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=8000)
        # Without flow ids every VOQ hashes as one unit: VOQ-level order.
        assert metrics.reordering.late_packets == 0

    def test_assignment_is_stable_per_voq(self):
        switch = TcpHashingSwitch(N, salt=1, per_flow=False)
        (p1,) = make_packets([(2, 5)])
        (p2,) = make_packets([(2, 5)])
        assert switch.assigned_port(p1) == switch.assigned_port(p2)

    def test_different_salts_differ_somewhere(self):
        a = TcpHashingSwitch(N, salt=0)
        b = TcpHashingSwitch(N, salt=1)
        packets = make_packets([(i, j) for i in range(N) for j in range(N)])
        assignments_a = [a.assigned_port(p) for p in packets]
        assignments_b = [b.assigned_port(p) for p in packets]
        assert assignments_a != assignments_b

    def test_oversubscription_grows_backlog(self):
        # Concentrate all of one input's traffic on VOQs that hash to the
        # same intermediate port: its service rate 1/N cannot keep up.
        switch = TcpHashingSwitch(N, salt=0, per_flow=False)
        probe = make_packets([(0, j) for j in range(N)])
        target = switch.assigned_port(probe[0])
        same = [p.output_port for p in probe if switch.assigned_port(p) == target]
        matrix = np.zeros((N, N))
        for j in same:
            matrix[0][j] = 0.8 / len(same)
        # Input 0 offers 0.8 to a single 1/N = 0.125 channel: unstable.
        drive_switch(switch, matrix, 6000)
        assert switch.max_input_backlog() > 0.5 * (0.8 - 1.0 / N) * 6000


class TestOutputQueued:
    def test_in_order_and_conserving(self):
        switch = OutputQueuedSwitch(N)
        metrics = drive_switch(switch, MATRIX, SLOTS, drain_slots=2000)
        assert metrics.reordering.late_packets == 0
        assert switch.conservation_ok()
        assert switch.in_flight() == 0

    def test_delay_lower_bounds_everyone(self):
        oq = OutputQueuedSwitch(N)
        lb = BaselineLoadBalancedSwitch(N)
        m_oq = drive_switch(oq, MATRIX, SLOTS, drain_slots=5000)
        m_lb = drive_switch(lb, MATRIX, SLOTS, drain_slots=5000)
        assert m_oq.delays.mean <= m_lb.delays.mean

    def test_slot_protocol_validated(self):
        switch = OutputQueuedSwitch(N)
        switch.step(0, [])
        with pytest.raises(ValueError):
            switch.step(5, [])
