"""Tests for simulation output analysis (sim/stats.py)."""

import numpy as np
import pytest

from repro.sim.stats import batch_means, compare_means, mser_truncation


class TestMser:
    def test_finds_obvious_transient(self, rng):
        series = [1000.0] * 50 + list(10 + rng.random(1000))
        cut = mser_truncation(series)
        assert 40 <= cut <= 120

    def test_stationary_series_keeps_everything(self, rng):
        series = list(5 + rng.random(1000))
        cut = mser_truncation(series)
        assert cut < 200  # no big truncation without a transient

    def test_tiny_series(self):
        assert mser_truncation([1.0, 2.0]) == 0

    def test_respects_max_fraction(self, rng):
        series = list(rng.random(100))
        assert mser_truncation(series, max_fraction=0.3) <= 30

    def test_degenerate_tail_not_selected(self, rng):
        """Regression: with max_fraction ~ 1, a near-empty tail has a
        degenerate score (a 1-sample tail's std is 0, so its standard
        error is 0) and the old scan discarded nearly the whole series.
        Candidates must leave at least MIN_MSER_TAIL samples."""
        from repro.sim.stats import MIN_MSER_TAIL

        # A slowly decreasing series: every longer truncation looks
        # (spuriously) better, so the scan runs into the tail cap.
        series = list(np.linspace(100.0, 0.0, 200))
        cut = mser_truncation(series, max_fraction=1.0)
        assert cut <= len(series) - MIN_MSER_TAIL
        # The stationary-tail property still holds with a transient.
        series = [1000.0] * 20 + [10.0] * 200
        cut = mser_truncation(series, max_fraction=1.0)
        assert 15 <= cut <= 40

    def test_short_series_with_full_fraction(self):
        # size 4 (the scan threshold): the tail floor must not underflow.
        assert mser_truncation([5.0, 4.0, 3.0, 2.0], max_fraction=1.0) == 0


class TestBatchMeans:
    def test_covers_true_mean_iid(self, rng):
        series = 7.0 + rng.standard_normal(4000)
        result = batch_means(series, batches=20)
        assert result.contains(7.0)
        assert result.half_width < 0.2

    def test_interval_narrows_with_data(self, rng):
        short = batch_means(5 + rng.standard_normal(400), batches=10)
        long = batch_means(5 + rng.standard_normal(40_000), batches=10)
        assert long.half_width < short.half_width

    def test_confidence_widens_interval(self, rng):
        series = rng.standard_normal(2000)
        narrow = batch_means(series, batches=20, confidence=0.9)
        wide = batch_means(series, batches=20, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_interval_tuple(self, rng):
        result = batch_means(rng.standard_normal(400), batches=10)
        low, high = result.interval
        assert low < result.mean < high

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            batch_means([1.0] * 100, batches=1)
        with pytest.raises(ValueError):
            batch_means([1.0] * 10, batches=20)
        with pytest.raises(ValueError):
            batch_means([1.0] * 100, confidence=1.5)


class TestCompareMeans:
    def test_detects_real_difference(self, rng):
        a = 10 + rng.standard_normal(4000)
        b = 12 + rng.standard_normal(4000)
        diff, half_width = compare_means(a, b)
        assert diff == pytest.approx(-2.0, abs=0.3)
        assert abs(diff) > half_width  # significant

    def test_no_false_positive_on_equal_means(self, rng):
        a = 3 + rng.standard_normal(4000)
        b = 3 + rng.standard_normal(4000)
        diff, half_width = compare_means(a, b)
        assert abs(diff) < 3 * half_width
