"""Unit tests for Latin-square generation (core/latin.py)."""

import numpy as np
import pytest

from repro.core.latin import (
    JacobsonMatthewsSampler,
    circulant_ols,
    column_permutations,
    is_latin_square,
    row_permutations,
    weakly_uniform_ols,
)


class TestIsLatinSquare:
    def test_accepts_circulant(self):
        for n in (2, 4, 8):
            assert is_latin_square(circulant_ols(n))

    def test_rejects_repeated_row_entry(self):
        assert not is_latin_square([[0, 0], [1, 1]])

    def test_rejects_repeated_column_entry(self):
        assert not is_latin_square([[0, 1], [0, 1]])

    def test_rejects_ragged(self):
        assert not is_latin_square([[0, 1], [1]])


class TestWeaklyUniformOls:
    def test_is_latin_square(self, rng):
        for n in (2, 4, 8, 32):
            assert is_latin_square(weakly_uniform_ols(n, rng))

    def test_deterministic_for_seed(self):
        a = weakly_uniform_ols(16, np.random.default_rng(3))
        b = weakly_uniform_ols(16, np.random.default_rng(3))
        assert a == b

    def test_rows_and_columns_are_permutations(self, rng):
        square = weakly_uniform_ols(8, rng)
        for row in row_permutations(square):
            assert sorted(row) == list(range(8))
        for col in column_permutations(square):
            assert sorted(col) == list(range(8))

    def test_marginal_uniformity_of_cells(self, rng):
        # Weak uniformity: each cell value should be uniform over 0..n-1
        # across independent draws (the property section 4 relies on).
        n = 4
        trials = 4000
        counts = np.zeros((n, n, n))
        for _ in range(trials):
            square = weakly_uniform_ols(n, rng)
            for i in range(n):
                for j in range(n):
                    counts[i][j][square[i][j]] += 1
        expected = trials / n
        worst_chi2 = 0.0
        for i in range(n):
            for j in range(n):
                chi2 = float(((counts[i][j] - expected) ** 2 / expected).sum())
                worst_chi2 = max(worst_chi2, chi2)
        # 3 dof per cell; 16 cells; generous bound to keep flake-free.
        assert worst_chi2 < 30.0

    def test_structure_row_shifts(self, rng):
        # A[i][j] = (sR[i] + sC[j]) mod n: any two rows differ by a
        # constant cyclic shift.
        square = weakly_uniform_ols(8, rng)
        delta = (square[1][0] - square[0][0]) % 8
        for j in range(8):
            assert (square[1][j] - square[0][j]) % 8 == delta


class TestJacobsonMatthews:
    def test_stays_latin_after_sampling(self, rng):
        sampler = JacobsonMatthewsSampler(5, rng)
        square = sampler.sample(mixing_steps=200)
        assert is_latin_square(square)

    def test_multiple_samples_all_latin(self, rng):
        sampler = JacobsonMatthewsSampler(4, rng)
        for _ in range(5):
            assert is_latin_square(sampler.sample(mixing_steps=64))

    def test_reaches_many_squares(self, rng):
        # Order 4 has 576 Latin squares; the chain should visit plenty.
        sampler = JacobsonMatthewsSampler(4, rng)
        seen = set()
        for _ in range(60):
            seen.add(tuple(map(tuple, sampler.sample(mixing_steps=32))))
        assert len(seen) > 20

    def test_rejects_bad_initial(self, rng):
        with pytest.raises(ValueError):
            JacobsonMatthewsSampler(3, rng, initial=[[0, 1, 2]] * 3)

    def test_rejects_tiny_order(self, rng):
        with pytest.raises(ValueError):
            JacobsonMatthewsSampler(1, rng)

    def test_improper_states_resolve(self, rng):
        sampler = JacobsonMatthewsSampler(4, rng)
        # Run raw steps; chain may pass through improper states but
        # run_until_proper must land on a proper square.
        sampler.run_until_proper(min_steps=100)
        assert sampler.is_proper
