"""Negative result: the increasing/decreasing fabric pairing is load-bearing.

Paper §3.4 picks fabric 1 "increasing" and fabric 2 "decreasing" so that,
from any output's viewpoint, the source intermediate port advances by one
per slot — matching how stripes are written. These tests run a Sprinklers
switch with a *mispaired* second fabric (increasing on both stages, i.e.
the output's read pointer runs backwards through each stripe) and show the
ordering guarantee collapses, while the stock pairing holds on identical
traffic. A reproduction of why the design is what it is.
"""

import numpy as np

from repro.core.interval_assignment import StripeIntervalAssignment
from repro.core.sprinklers_switch import SprinklersSwitch
from repro.sim.metrics import SimulationMetrics
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


class MispairedSprinklers(SprinklersSwitch):
    """Sprinklers with fabric 2 running the same direction as fabric 1."""

    name = "sprinklers-mispaired"
    guarantees_ordering = False  # that's the point

    def _stage2_connection(self, mid_port: int, slot: int) -> int:
        return (mid_port + slot) % self.n  # wrong: mirrors fabric 1


def run(switch_cls, n=8, load=0.8, slots=6000, seed=2):
    matrix = uniform_matrix(n, load)
    assignment = StripeIntervalAssignment(
        matrix, rng=np.random.default_rng(seed)
    )
    switch = switch_cls(assignment)
    traffic = TrafficGenerator(matrix, np.random.default_rng(seed + 1))
    metrics = SimulationMetrics(keep_samples=False)
    for slot, packets in traffic.slots(slots):
        for packet in switch.step(slot, packets):
            metrics.observe_departure(packet, measure=True)
    for packet in switch.drain(50 * n):
        metrics.observe_departure(packet, measure=True)
    return metrics


class TestFabricPairing:
    def test_stock_pairing_is_ordered(self):
        metrics = run(SprinklersSwitch)
        assert metrics.delays.count > 0
        assert metrics.reordering.late_packets == 0

    def test_mispaired_fabrics_reorder(self):
        # Identical assignment, traffic and seeds — only the stage-2
        # connection pattern differs — and ordering collapses.
        metrics = run(MispairedSprinklers)
        assert metrics.delays.count > 0
        assert metrics.reordering.late_packets > 0

    def test_mispairing_still_conserves_packets(self):
        # The mispairing breaks *ordering*, not the data path: packets
        # still all get delivered exactly once.
        n = 8
        matrix = uniform_matrix(n, 0.6)
        assignment = StripeIntervalAssignment(
            matrix, rng=np.random.default_rng(0)
        )
        switch = MispairedSprinklers(assignment)
        traffic = TrafficGenerator(matrix, np.random.default_rng(1))
        for slot, packets in traffic.slots(2000):
            switch.step(slot, packets)
        assert switch.conservation_ok()
