"""Tests for the schedule-grid renderers (core/schedule_grid.py)."""

import numpy as np

from repro.core.schedule_grid import (
    grid_occupancy_by_stripe,
    render_fifo_array,
    render_input_grid,
)
from repro.core.sprinklers_switch import SprinklersSwitch
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix


def loaded_switch(n=8, load=0.8, slots=300):
    matrix = uniform_matrix(n, load)
    switch = SprinklersSwitch.from_rates(matrix, seed=1)
    traffic = TrafficGenerator(matrix, np.random.default_rng(2))
    for slot, packets in traffic.slots(slots):
        switch.step(slot, packets)
    return switch


class TestRenderers:
    def test_grid_lists_every_port(self):
        switch = loaded_switch()
        text = render_input_grid(switch, 0)
        for port in range(8):
            assert f"port {port:2d}" in text

    def test_grid_reflects_occupancy(self):
        switch = loaded_switch()
        text = render_input_grid(switch, 0)
        queued = switch._input_lsf[0].occupancy
        # Every queued packet appears as exactly one label cell.
        body = text.splitlines()[1:]
        cells = "".join(line.split("|")[1] for line in body if "|" in line)
        assert sum(1 for c in cells if c != ".") == queued

    def test_fifo_array_shows_columns(self):
        switch = loaded_switch()
        text = render_fifo_array(switch, 0)
        assert "2^0" in text and "2^3" in text

    def test_occupancy_by_stripe_matches_total(self):
        switch = loaded_switch()
        counts = grid_occupancy_by_stripe(switch, 0)
        assert sum(counts.values()) == switch._input_lsf[0].occupancy

    def test_empty_switch_renders(self):
        matrix = uniform_matrix(4, 0.5)
        switch = SprinklersSwitch.from_rates(matrix, seed=0)
        text = render_input_grid(switch, 0)
        assert "||" in text.replace(" ", "") or "|" in text
