"""Unit tests for rate estimation and hysteresis sizing (core/rate_estimation.py)."""

import pytest

from repro.core.rate_estimation import EwmaRateEstimator, HysteresisSizer
from repro.core.striping import stripe_size_for_rate


class TestEwmaRateEstimator:
    def test_converges_to_true_rate(self):
        est = EwmaRateEstimator(beta=0.05)
        # Deterministic arrival every 4 slots -> rate 0.25.
        for slot in range(0, 4000, 4):
            est.observe_arrival((0, 0), slot)
        assert abs(est.rate((0, 0), 4000) - 0.25) < 0.05

    def test_decays_when_idle(self):
        est = EwmaRateEstimator(beta=0.1)
        for slot in range(100):
            est.observe_arrival((0, 0), slot)
        busy = est.rate((0, 0), 100)
        assert busy > 0.9
        assert est.rate((0, 0), 400) < 0.01 * busy

    def test_unknown_voq_has_initial_rate(self):
        est = EwmaRateEstimator(beta=0.1, initial_rate=0.5)
        assert est.rate((3, 4), 100) == 0.5

    def test_lazy_update_matches_dense_recursion(self):
        beta = 0.1
        est = EwmaRateEstimator(beta=beta)
        arrivals = {0, 3, 4, 9, 15, 16, 17, 30}
        dense = 0.0
        for slot in range(31):
            x = 1.0 if slot in arrivals else 0.0
            dense = (1 - beta) * dense + beta * x
            if x:
                est.observe_arrival((0, 0), slot)
        assert abs(est.rate((0, 0), 31) - dense) < 1e-12

    def test_rejects_out_of_order(self):
        est = EwmaRateEstimator(beta=0.1)
        est.observe_arrival((0, 0), 10)
        with pytest.raises(ValueError):
            est.observe_arrival((0, 0), 5)

    def test_rejects_bad_beta(self):
        for beta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                EwmaRateEstimator(beta=beta)


class TestHysteresisSizer:
    def test_no_resize_when_target_matches(self):
        sizer = HysteresisSizer(32, patience=3)
        current = stripe_size_for_rate(0.1, 32)
        assert sizer.evaluate((0, 0), current, 0.1) is None

    def test_resize_after_patience(self):
        sizer = HysteresisSizer(32, patience=3)
        target = stripe_size_for_rate(0.2, 32)
        assert sizer.evaluate((0, 0), 1, 0.2) is None
        assert sizer.evaluate((0, 0), 1, 0.2) is None
        assert sizer.evaluate((0, 0), 1, 0.2) == target

    def test_agreement_resets_streak(self):
        sizer = HysteresisSizer(32, patience=2)
        target = stripe_size_for_rate(0.2, 32)
        assert sizer.evaluate((0, 0), 1, 0.2) is None
        # A rate matching the current size resets the disagreement streak.
        assert sizer.evaluate((0, 0), 1, 0.5 / (32 * 32)) is None
        assert sizer.evaluate((0, 0), 1, 0.2) is None
        assert sizer.evaluate((0, 0), 1, 0.2) == target

    def test_flapping_rate_never_resizes(self):
        # Alternating between two targets never accumulates patience.
        sizer = HysteresisSizer(32, patience=2)
        n2 = 32 * 32
        for _ in range(50):
            assert sizer.evaluate((0, 0), 2, 3.0 / n2) is None  # target 4
            assert sizer.evaluate((0, 0), 2, 9.0 / n2) is None  # target 16

    def test_voqs_tracked_independently(self):
        sizer = HysteresisSizer(32, patience=2)
        assert sizer.evaluate((0, 0), 1, 0.2) is None
        assert sizer.evaluate((1, 1), 1, 0.2) is None
        assert sizer.evaluate((0, 0), 1, 0.2) is not None

    def test_patience_one_resizes_immediately(self):
        sizer = HysteresisSizer(32, patience=1)
        assert sizer.evaluate((0, 0), 1, 0.2) == stripe_size_for_rate(0.2, 32)

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError):
            HysteresisSizer(32, patience=0)
