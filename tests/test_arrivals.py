"""Unit tests for arrival processes (traffic/arrivals.py)."""

import numpy as np
import pytest

from repro.traffic.arrivals import BernoulliArrivals, OnOffArrivals, TraceArrivals


class TestBernoulli:
    def test_rate_matches(self, rng):
        proc = BernoulliArrivals([0.3] * 4, rng)
        slots, inputs = proc.chunk(0, 20_000)
        assert len(slots) == pytest.approx(0.3 * 4 * 20_000, rel=0.05)

    def test_per_input_rates(self, rng):
        proc = BernoulliArrivals([0.1, 0.9], rng)
        slots, inputs = proc.chunk(0, 20_000)
        count_0 = int((inputs == 0).sum())
        count_1 = int((inputs == 1).sum())
        assert count_0 == pytest.approx(0.1 * 20_000, rel=0.15)
        assert count_1 == pytest.approx(0.9 * 20_000, rel=0.05)

    def test_at_most_one_arrival_per_slot_input(self, rng):
        proc = BernoulliArrivals([1.0] * 2, rng)
        slots, inputs = proc.chunk(0, 100)
        assert len(set(zip(slots.tolist(), inputs.tolist()))) == len(slots)

    def test_chunks_cover_range(self, rng):
        proc = BernoulliArrivals([0.5] * 2, rng)
        seen = []
        for slots, inputs in proc.events(1000, chunk_slots=64):
            seen.extend(slots.tolist())
        assert all(0 <= s < 1000 for s in seen)
        assert seen == sorted(seen)

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(ValueError):
            BernoulliArrivals([1.2], rng)
        with pytest.raises(ValueError):
            BernoulliArrivals([[0.5]], rng)


class TestOnOff:
    def test_mean_rate_formula(self, rng):
        proc = OnOffArrivals(2, peak_rate=0.8, mean_on=20, mean_off=60, rng=rng)
        assert proc.mean_rate == pytest.approx(0.8 * 0.25)

    def test_empirical_rate(self, rng):
        proc = OnOffArrivals(4, peak_rate=0.9, mean_on=50, mean_off=50, rng=rng)
        slots, inputs = proc.chunk(0, 40_000)
        empirical = len(slots) / (4 * 40_000)
        assert empirical == pytest.approx(proc.mean_rate, rel=0.15)

    def test_burstiness_exceeds_bernoulli(self, rng):
        # Variance of per-window counts should exceed Bernoulli's at equal
        # mean rate.
        onoff = OnOffArrivals(1, peak_rate=1.0, mean_on=50, mean_off=50, rng=rng)
        bern = BernoulliArrivals([onoff.mean_rate], np.random.default_rng(7))
        window = 100

        def window_var(proc):
            slots, _ = proc.chunk(0, 50_000)
            counts = np.bincount(slots // window, minlength=500)
            return float(np.var(counts))

        assert window_var(onoff) > 2.0 * window_var(bern)

    def test_state_continuity_across_chunks(self, rng):
        proc = OnOffArrivals(2, peak_rate=1.0, mean_on=1e9, mean_off=1e9, rng=rng)
        # With effectively frozen states, chunking must not reset them.
        first_states = proc._state_on.copy()
        proc.chunk(0, 100)
        assert (proc._state_on == first_states).all()

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            OnOffArrivals(0, 0.5, 10, 10, rng)
        with pytest.raises(ValueError):
            OnOffArrivals(2, 1.5, 10, 10, rng)
        with pytest.raises(ValueError):
            OnOffArrivals(2, 0.5, 0.5, 10, rng)


class TestTrace:
    def test_replay(self):
        events = [(0, 1), (0, 0), (5, 1), (9, 0)]
        # must be sorted by slot; same-slot any input order
        proc = TraceArrivals(2, events)
        slots, inputs = proc.chunk(0, 10)
        assert len(slots) == 4

    def test_chunk_windows(self):
        proc = TraceArrivals(2, [(1, 0), (5, 1), (8, 0)])
        slots, inputs = proc.chunk(0, 5)
        assert slots.tolist() == [1]
        slots, inputs = proc.chunk(5, 5)
        assert slots.tolist() == [5, 8]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceArrivals(2, [(5, 0), (1, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TraceArrivals(2, [(1, 0), (1, 0)])

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            TraceArrivals(2, [(0, 5)])
