"""Unit tests for stripe sizing and assembly (core/striping.py)."""

import math

import pytest

from repro.core.dyadic import DyadicInterval
from repro.core.striping import (
    Stripe,
    StripeAssembler,
    load_per_share,
    per_port_budget,
    stripe_size_for_rate,
)
from repro.switching.packet import Packet


def make_packet(i=0, j=0, slot=0, seq=0):
    return Packet(input_port=i, output_port=j, arrival_slot=slot, seq=seq)


class TestStripeSizeRule:
    """Equation (1): F(r) = min(N, 2^ceil(log2(r N^2)))."""

    def test_zero_rate(self):
        assert stripe_size_for_rate(0.0, 32) == 1

    def test_at_most_alpha_gives_one(self):
        n = 32
        assert stripe_size_for_rate(per_port_budget(n), n) == 1
        assert stripe_size_for_rate(per_port_budget(n) * 0.5, n) == 1

    def test_just_above_alpha_gives_two(self):
        n = 32
        assert stripe_size_for_rate(per_port_budget(n) * 1.01, n) == 2

    def test_cap_at_n(self):
        n = 32
        assert stripe_size_for_rate(1.0, n) == n
        assert stripe_size_for_rate(0.5, n) == n

    def test_exact_powers(self):
        n = 32
        # r N^2 = 8 exactly -> ceil(log2 8) = 3 -> size 8.
        assert stripe_size_for_rate(8.0 / (n * n), n) == 8
        # Just above -> 16.
        assert stripe_size_for_rate(8.2 / (n * n), n) == 16

    def test_monotone_in_rate(self):
        n = 64
        rates = [k / 10000.0 for k in range(0, 10001, 7)]
        sizes = [stripe_size_for_rate(r, n) for r in rates]
        assert sizes == sorted(sizes)

    def test_always_power_of_two_within_n(self):
        n = 64
        for k in range(1, 200):
            size = stripe_size_for_rate(k / 200.0, n)
            assert size & (size - 1) == 0
            assert 1 <= size <= n

    def test_matches_paper_formula(self):
        n = 64
        for k in range(1, 400):
            r = k / 400.0
            expected = min(n, 2 ** math.ceil(math.log2(r * n * n)))
            if r * n * n <= 1.0:
                expected = 1
            assert stripe_size_for_rate(r, n) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            stripe_size_for_rate(-0.1, 32)
        with pytest.raises(ValueError):
            stripe_size_for_rate(0.5, 33)


class TestLoadPerShare:
    def test_below_budget_when_not_capped(self):
        n = 32
        alpha = per_port_budget(n)
        for k in range(1, 100):
            r = k / 100.0 * (1.0 / n)  # rates up to 1/N are never capped
            if stripe_size_for_rate(r, n) < n:
                assert load_per_share(r, n) <= alpha + 1e-15

    def test_above_half_budget_when_size_above_one(self):
        # Dyadic rounding wastes at most a factor 2: s > alpha/2 when f >= 2.
        n = 32
        alpha = per_port_budget(n)
        for k in range(1, 1000):
            r = k / 1000.0
            size = stripe_size_for_rate(r, n)
            if 2 <= size < n:
                assert load_per_share(r, n) > alpha / 2 - 1e-15

    def test_budget_value(self):
        assert per_port_budget(4) == 1.0 / 16.0
        with pytest.raises(ValueError):
            per_port_budget(0)


class TestStripe:
    def test_labels_packets(self):
        packets = [make_packet(slot=k, seq=k) for k in range(4)]
        stripe = Stripe(7, 0, 0, DyadicInterval(4, 4), packets)
        for pos, pkt in enumerate(packets):
            assert pkt.stripe_id == 7
            assert pkt.stripe_size == 4
            assert pkt.stripe_pos == pos

    def test_packet_for_port(self):
        packets = [make_packet(seq=k) for k in range(4)]
        stripe = Stripe(1, 0, 0, DyadicInterval(4, 4), packets)
        assert stripe.packet_for_port(4) is packets[0]
        assert stripe.packet_for_port(7) is packets[3]
        with pytest.raises(KeyError):
            stripe.packet_for_port(3)

    def test_size_must_match_interval(self):
        with pytest.raises(ValueError):
            Stripe(0, 0, 0, DyadicInterval(0, 4), [make_packet()])

    def test_len(self):
        stripe = Stripe(0, 0, 0, DyadicInterval(0, 2), [make_packet(), make_packet()])
        assert len(stripe) == 2


class TestStripeAssembler:
    def test_accumulates_until_full(self):
        asm = StripeAssembler(0, 0, DyadicInterval(0, 4))
        for k in range(3):
            assert asm.push(make_packet(seq=k), next_stripe_id=0) is None
        assert asm.pending_count == 3
        stripe = asm.push(make_packet(seq=3), next_stripe_id=0)
        assert stripe is not None
        assert stripe.size == 4
        assert asm.pending_count == 0

    def test_packets_kept_in_arrival_order(self):
        asm = StripeAssembler(0, 0, DyadicInterval(0, 4))
        stripe = None
        for k in range(4):
            stripe = asm.push(make_packet(seq=k), next_stripe_id=5) or stripe
        assert [p.seq for p in stripe.packets] == [0, 1, 2, 3]

    def test_size_one_immediate(self):
        asm = StripeAssembler(0, 0, DyadicInterval(3, 1))
        stripe = asm.push(make_packet(), next_stripe_id=0)
        assert stripe is not None and stripe.size == 1

    def test_interval_change_recuts_pending(self):
        asm = StripeAssembler(0, 0, DyadicInterval(0, 4))
        asm.push(make_packet(seq=0), 0)
        asm.push(make_packet(seq=1), 0)
        asm.set_interval(DyadicInterval(0, 2))
        stripe = asm.push(make_packet(seq=2), 1)
        # The first two pending packets become the first size-2 stripe.
        assert stripe is not None
        assert [p.seq for p in stripe.packets] == [0, 1]
        assert asm.pending_count == 1

    def test_rejects_wrong_voq(self):
        asm = StripeAssembler(0, 1, DyadicInterval(0, 1))
        with pytest.raises(ValueError):
            asm.push(make_packet(i=1, j=1), 0)
        with pytest.raises(ValueError):
            asm.push(make_packet(i=0, j=0), 0)
