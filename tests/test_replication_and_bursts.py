"""Tests for replication methodology and the burst-sensitivity extension."""

import pytest

from repro.figures.burst_sensitivity import generate as burst_generate
from repro.sim.replication import replicate
from repro.traffic.matrices import uniform_matrix


class TestReplicate:
    def test_summary_structure(self):
        result = replicate(
            "load-balanced", uniform_matrix(8, 0.6), 1200, replications=4,
        )
        assert result.replications == 4
        assert len(result.values) == 4
        low, high = result.interval
        assert low <= result.mean <= high

    def test_interval_covers_long_run_value(self):
        # The replication CI for baseline delay should cover the estimate
        # from a much longer single run.
        from repro.sim.experiment import run_single

        matrix = uniform_matrix(8, 0.5)
        rep = replicate(
            "load-balanced", matrix, 4000, replications=8, base_seed=10,
        )
        long_run = run_single(
            "load-balanced", matrix, 40_000, seed=99, keep_samples=False
        )
        low, high = rep.interval
        # Generous slack: both are estimates.
        assert low - 3 * rep.half_width <= long_run.mean_delay
        assert long_run.mean_delay <= high + 3 * rep.half_width

    def test_custom_metric(self):
        result = replicate(
            "sprinklers",
            uniform_matrix(8, 0.7),
            1500,
            replications=3,
            metric=lambda r: float(r.late_packets),
            metric_name="late",
        )
        assert result.metric == "late"
        assert result.mean == 0.0  # never reorders, any seed

    def test_switch_params_replicated(self):
        """Regression: replicate() dropped switch_params, so a
        parameterized switch could not be replicated at all."""
        from repro.sim.experiment import run_single

        matrix = uniform_matrix(4, 0.6)
        result = replicate(
            "pf", matrix, 800, replications=3,
            switch_params={"threshold": 1},
        )
        want = run_single(
            "pf", matrix, 800, seed=0, keep_samples=False,
            switch_params={"threshold": 1},
        )
        assert result.values[0] == float(want.mean_delay)
        plain = replicate("pf", matrix, 800, replications=3)
        assert result.values != plain.values

    def test_needs_two_replications(self):
        with pytest.raises(ValueError):
            replicate("ufs", uniform_matrix(4, 0.5), 500, replications=1)


class TestBurstSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return burst_generate(
            n=8, load=0.5, bursts=(1.0, 128.0), num_slots=12_000,
            switches=("load-balanced", "sprinklers"), seed=1,
        )

    def test_grid_shape(self, rows):
        assert len(rows) == 4
        assert {row["switch"] for row in rows} == {"baseline-lb", "sprinklers"}

    def test_ordering_survives_bursts(self, rows):
        for row in rows:
            if row["switch"] == "sprinklers":
                assert row["late_packets"] == 0

    def test_aggregation_switches_pay_for_bursts(self, rows):
        # Burst trains inflate the stripe fill-time variance, so the
        # aggregating switch's delay grows with burst length...
        by_key = {(r["switch"], r["mean_burst"]): r["mean_delay"] for r in rows}
        assert (
            by_key[("sprinklers", 128.0)] > 1.05 * by_key[("sprinklers", 1.0)]
        )
        # ...while the non-aggregating baseline, whose input serves at
        # line rate >= the burst peak, barely notices.
        assert (
            by_key[("baseline-lb", 128.0)] < 2.0 * by_key[("baseline-lb", 1.0)]
        )
