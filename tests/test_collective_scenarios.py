"""Collective-communication workloads and trace-file scenarios:
samplers, spec validation, engine parity, and the run-path plumbing."""

import numpy as np
import pytest

from repro.scenarios import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    register_trace_scenario,
    resolve_scenario,
)
from repro.scenarios.spec import ScenarioSpec, effective_matrix
from repro.sim.experiment import run_single
from repro.traffic import bernoulli_traffic
from repro.traffic.matrices import uniform_matrix
from repro.traffic.generator import SteppedPermutations
from repro.traffic.trace_io import (
    TraceBatchSource,
    record_trace,
    replay_generator,
    trace_matrix,
    write_trace,
)

COLLECTIVES = ("ring-allreduce", "alltoall-phased", "incast-fanin")


class TestSteppedPermutations:
    def test_each_phase_is_a_derangement(self):
        sampler = SteppedPermutations(phase_slots=16)
        n = 8
        inputs = np.arange(n, dtype=np.int64)
        for phase in range(2 * n):
            slots = np.full(n, phase * 16, dtype=np.int64)
            dests = sampler.draw(None, slots, inputs, n)
            assert sorted(dests) == list(range(n))  # a permutation
            assert (dests != inputs).all()  # nobody sends to itself

    def test_steps_through_all_peers(self):
        sampler = SteppedPermutations(phase_slots=4)
        n = 6
        seen = set()
        for phase in range(n - 1):
            slots = np.full(1, phase * 4, dtype=np.int64)
            seen.add(int(sampler.draw(None, slots, np.zeros(1, np.int64), n)[0]))
        # Input 0 visits every other port across one full rotation.
        assert seen == set(range(1, n))

    def test_consumes_no_rng(self):
        # rng=None works: structural determinism is what makes the
        # collective scenarios engine-parity-exact by construction.
        sampler = SteppedPermutations(phase_slots=8)
        slots = np.arange(32, dtype=np.int64)
        inputs = slots % 4
        a = sampler.draw(None, slots, inputs, 4)
        b = sampler.draw(None, slots, inputs, 4)
        np.testing.assert_array_equal(a, b)

    def test_degenerate_sizes(self):
        sampler = SteppedPermutations(phase_slots=8)
        assert len(sampler.draw(None, np.arange(3), np.zeros(3, np.int64), 1)) == 3
        with pytest.raises(ValueError):
            SteppedPermutations(phase_slots=0)


class TestCollectiveSpecs:
    def test_registered(self):
        for name in COLLECTIVES:
            spec = get_scenario(name)
            assert spec.description

    def test_collective_matrix_is_uniform_off_diagonal(self):
        spec = get_scenario("ring-allreduce")
        matrix = effective_matrix(spec, 8, 0.8)
        assert np.allclose(np.diag(matrix), 0.0)
        off = matrix[~np.eye(8, dtype=bool)]
        assert np.allclose(off, off[0])
        assert matrix.sum(axis=1).max() == pytest.approx(0.8)

    def test_collective_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="x", collective={"kind": "tree"})
        with pytest.raises(ValueError, match="phase_slots"):
            ScenarioSpec(
                name="x", collective={"kind": "ring", "phase_slots": 0}
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x",
                collective={"kind": "ring"},
                drift={"family": "diagonal"},
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x",
                collective={"kind": "ring"},
                matrix={"family": "hotspot"},
            )

    def test_round_trips_through_dict(self):
        for name in COLLECTIVES:
            spec = get_scenario(name)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", COLLECTIVES)
    @pytest.mark.parametrize("switch", ["sprinklers", "foff"])
    def test_engine_parity(self, name, switch):
        kwargs = dict(
            scenario=name, n=8, load=0.7, num_slots=1200, seed=3,
        )
        obj = run_single(switch, engine="object", **kwargs)
        vec = run_single(switch, engine="vectorized", **kwargs)
        assert obj.to_dict() == vec.to_dict()

    def test_ring_phases_change_destinations(self):
        # Two consecutive phases of the ring target different peers.
        spec = get_scenario("ring-allreduce")
        phase_slots = spec.collective["phase_slots"]
        sampler = SteppedPermutations(phase_slots)
        inputs = np.zeros(2, dtype=np.int64)
        slots = np.asarray([0, phase_slots], dtype=np.int64)
        dests = sampler.draw(None, slots, inputs, 8)
        assert dests[0] != dests[1]


class TestTraceScenarios:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        # Trace resolution registers specs; keep the global registry
        # from accumulating tmp-path entries across tests.
        before = set(SCENARIOS)
        yield
        for name in set(SCENARIOS) - before:
            SCENARIOS.pop(name, None)

    @pytest.fixture
    def trace_path(self, tmp_path):
        generator = bernoulli_traffic(uniform_matrix(8, 0.6), seed=11)
        events = record_trace(generator, 600)
        path = tmp_path / "trace.csv.gz"
        write_trace(path, events)
        return str(path)

    def test_designator_resolves(self, trace_path):
        spec = resolve_scenario(f"trace:{trace_path}")
        assert spec.trace == {"path": trace_path}
        assert spec.name == f"trace:{trace_path}"

    def test_resolution_registers_a_first_class_entry(self, trace_path):
        designator = f"trace:{trace_path}"
        spec = resolve_scenario(designator)
        assert designator in SCENARIOS
        assert get_scenario(designator) is spec
        # Stable identity: re-resolving finds the registered spec.
        assert resolve_scenario(designator) is spec

    def test_register_trace_scenario_with_custom_name(self, trace_path):
        spec = register_trace_scenario(trace_path, name="datacenter-am")
        assert get_scenario("datacenter-am") is spec
        assert spec.trace == {"path": trace_path}
        assert "datacenter-am" in list_scenarios()
        # Path-derived specs re-register harmlessly (replace=True).
        register_trace_scenario(trace_path, name="datacenter-am")

    def test_registered_name_runs_like_the_designator(self, trace_path):
        register_trace_scenario(trace_path, name="recorded-uniform")
        kwargs = dict(n=8, load=0.6, num_slots=600, seed=0)
        by_name = run_single(
            "sprinklers", scenario="recorded-uniform", **kwargs
        )
        by_designator = run_single(
            "sprinklers", scenario=f"trace:{trace_path}", **kwargs
        )
        rows_a, rows_b = by_name.to_dict(), by_designator.to_dict()
        # The workload identity (scenario name) differs; the physics
        # must not.
        assert rows_a == rows_b

    def test_effective_matrix_from_trace(self, trace_path):
        spec = resolve_scenario(f"trace:{trace_path}")
        matrix = effective_matrix(spec, 8, 0.6)
        assert matrix.sum(axis=1).max() == pytest.approx(0.6)

    @pytest.mark.parametrize("switch", ["sprinklers", "foff"])
    def test_engine_parity(self, trace_path, switch):
        kwargs = dict(
            scenario=f"trace:{trace_path}", n=8, load=0.6,
            num_slots=600, seed=0,
        )
        obj = run_single(switch, engine="object", **kwargs)
        vec = run_single(switch, engine="vectorized", **kwargs)
        windowed = run_single(
            switch, engine="vectorized", window_slots=100, **kwargs
        )
        assert obj.to_dict() == vec.to_dict() == windowed.to_dict()

    def test_fabric_replay_parity(self, trace_path):
        kwargs = dict(
            scenario=f"trace:{trace_path}", n=8, load=0.6,
            num_slots=600, seed=0,
        )
        obj = run_single("leaf-spine", engine="object", **kwargs)
        vec = run_single(
            "leaf-spine", engine="vectorized", window_slots=128, **kwargs
        )
        assert obj.to_dict() == vec.to_dict()

    def test_trace_spec_owns_the_workload(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", trace={"path": "t.csv"},
                arrivals={"kind": "onoff"},
            )
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", trace={})

    def test_batch_source_matches_replay_generator(self):
        generator = bernoulli_traffic(uniform_matrix(4, 0.7), seed=5)
        events = record_trace(generator, 300)
        replay = replay_generator(4, events)
        rows = []
        for slot, packets in replay.slots(300):
            for p in packets:
                rows.append(
                    (slot, p.input_port, p.output_port, p.seq)
                )
        batch = TraceBatchSource(4, events).draw(300)
        got = list(
            zip(
                batch.slots.tolist(), batch.inputs.tolist(),
                batch.outputs.tolist(), batch.seqs.tolist(),
            )
        )
        assert got == rows

    def test_batch_source_chunks_match_draw(self):
        generator = bernoulli_traffic(uniform_matrix(4, 0.7), seed=6)
        events = record_trace(generator, 300)
        whole = TraceBatchSource(4, events).draw(300)
        source = TraceBatchSource(4, events)
        chunks = list(source.draw_chunks(300, 64))
        np.testing.assert_array_equal(
            whole.slots, np.concatenate([c.slots for c in chunks])
        )
        np.testing.assert_array_equal(
            whole.seqs, np.concatenate([c.seqs for c in chunks])
        )
        assert source.generated == len(whole)

    def test_batch_source_warns_on_truncation(self, caplog):
        events = [(0, 0, 1, None), (500, 1, 0, None)]
        source = TraceBatchSource(2, events)
        with caplog.at_level("WARNING", logger="repro"):
            batch = source.draw(100)
        assert any(
            "truncates the trace" in rec.message for rec in caplog.records
        )
        assert len(batch) == 1

    def test_batch_source_validates(self):
        with pytest.raises(ValueError, match="sorted by slot"):
            TraceBatchSource(2, [(5, 0, 1, None), (1, 0, 1, None)])
        with pytest.raises(ValueError, match="out of range"):
            TraceBatchSource(2, [(0, 0, 5, None)])

    def test_trace_matrix(self):
        events = [(0, 0, 1, None), (1, 0, 1, None), (2, 1, 0, None)]
        matrix = trace_matrix(2, events)
        np.testing.assert_array_equal(matrix, [[0.0, 2.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="no events"):
            trace_matrix(2, [])
        with pytest.raises(ValueError, match="out of range"):
            trace_matrix(2, [(0, 0, 7, None)])
