"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dyadic import DyadicInterval, dyadic_interval_for
from repro.core.latin import is_latin_square, weakly_uniform_ols
from repro.core.lsf import highest_set_bit
from repro.core.permutation import (
    compose_permutations,
    inverse_permutation,
    is_permutation,
    random_permutation,
)
from repro.core.striping import (
    load_per_share,
    per_port_budget,
    stripe_size_for_rate,
)
from repro.analysis.delay_model import expected_queue_length
from repro.analysis.stability import queue_arrival_rate, theorem1_threshold


sizes = st.sampled_from([2, 4, 8, 16, 32, 64])
small_sizes = st.sampled_from([2, 4, 8, 16])


@st.composite
def dyadic_intervals(draw, n=32):
    size = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    start = draw(st.integers(0, n // size - 1)) * size
    return DyadicInterval(start, size)


class TestDyadicProperties:
    @given(dyadic_intervals(), dyadic_intervals())
    def test_laminar_family(self, a, b):
        # Bear hug or don't touch.
        if a.overlaps(b):
            assert a.contains(b) or b.contains(a)

    @given(dyadic_intervals())
    def test_parent_contains(self, iv):
        if iv.size < 64:
            assert iv.parent().contains(iv)

    @given(dyadic_intervals())
    def test_children_partition(self, iv):
        if iv.size > 1:
            left, right = iv.children()
            assert left.end == right.start
            assert left.start == iv.start and right.end == iv.end

    @given(st.integers(0, 31), st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_interval_for_contains_port(self, port, size):
        iv = dyadic_interval_for(port, size, 32)
        assert iv.contains_port(port)
        assert iv.size == size

    @given(st.integers(0, 31), st.sampled_from([1, 2, 4, 8, 16]))
    def test_interval_for_is_nested_in_parent_size(self, port, size):
        small = dyadic_interval_for(port, size, 32)
        big = dyadic_interval_for(port, size * 2, 32)
        assert big.contains(small)


class TestStripeSizeProperties:
    @given(st.floats(0.0, 1.0, allow_nan=False), sizes)
    def test_size_is_power_of_two_in_range(self, rate, n):
        size = stripe_size_for_rate(rate, n)
        assert 1 <= size <= n
        assert size & (size - 1) == 0

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), sizes)
    def test_monotone(self, r1, r2, n):
        lo, hi = sorted((r1, r2))
        assert stripe_size_for_rate(lo, n) <= stripe_size_for_rate(hi, n)

    @given(st.floats(1e-9, 1.0), sizes)
    def test_load_per_share_budget(self, rate, n):
        # s <= alpha unless capped at full width, where s <= rate/N <= 1/N.
        size = stripe_size_for_rate(rate, n)
        share = load_per_share(rate, n)
        if size < n:
            assert share <= per_port_budget(n) * (1 + 1e-12)
        else:
            assert share <= 1.0 / n + 1e-12

    @given(st.floats(1e-9, 1.0), sizes)
    def test_minimality(self, rate, n):
        # F is the *smallest* admissible power of two: half the stripe
        # would blow the budget (when not already 1).
        size = stripe_size_for_rate(rate, n)
        if size > 1:
            assert rate / (size // 2) > per_port_budget(n) * (1 - 1e-12)


class TestPermutationProperties:
    @given(st.integers(1, 128), st.integers(0, 2**32 - 1))
    def test_output_is_permutation(self, n, seed):
        perm = random_permutation(n, np.random.default_rng(seed))
        assert is_permutation(perm)

    @given(st.integers(1, 64), st.integers(0, 2**32 - 1))
    def test_inverse_composes_to_identity(self, n, seed):
        perm = random_permutation(n, np.random.default_rng(seed))
        assert compose_permutations(perm, inverse_permutation(perm)) == list(
            range(n)
        )

    @given(st.integers(0, 2**20 - 1))
    def test_highest_set_bit_matches_log(self, bitmap):
        if bitmap == 0:
            assert highest_set_bit(bitmap) == -1
        else:
            assert highest_set_bit(bitmap) == int(math.floor(math.log2(bitmap)))


class TestLatinSquareProperties:
    @given(small_sizes, st.integers(0, 2**32 - 1))
    def test_weakly_uniform_is_latin(self, n, seed):
        assert is_latin_square(weakly_uniform_ols(n, np.random.default_rng(seed)))


class TestStabilityProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=16, max_size=16),
        st.integers(0, 2**32 - 1),
    )
    def test_below_threshold_never_overloads(self, raw, seed):
        # Theorem 1 as a property: any nonnegative rate vector scaled to
        # total just below the threshold keeps X < 1/N for every placement.
        n = 16
        total = sum(raw)
        if total <= 0:
            return
        scale = (theorem1_threshold(n) - 1e-9) / total
        if not math.isfinite(scale):
            # A denormal total overflows the scale factor; the scaled rate
            # vector would be inf/NaN, outside the theorem's hypothesis.
            return
        rates = [r * scale for r in raw]
        rng = np.random.default_rng(seed)
        for _ in range(20):
            sigma = [int(v) for v in rng.permutation(n)]
            assert queue_arrival_rate(rates, sigma, n) < 1.0 / n

    @settings(deadline=None)
    @given(st.integers(1, 2000), st.floats(0.0, 0.99))
    def test_expected_queue_nonnegative_and_linear_in_n(self, n, rho):
        value = expected_queue_length(n, rho)
        assert value >= 0.0
        assert value == pytest.approx((n - 1) * expected_queue_length(2, rho))


class TestEndToEndOrderingProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.sampled_from([2, 4, 8]),
        load=st.floats(0.1, 0.95),
        placement_seed=st.integers(0, 1000),
        traffic_seed=st.integers(0, 1000),
    )
    def test_sprinklers_never_reorders(self, n, load, placement_seed, traffic_seed):
        from repro.core.sprinklers_switch import SprinklersSwitch
        from repro.sim.metrics import SimulationMetrics
        from repro.traffic.generator import TrafficGenerator
        from repro.traffic.matrices import uniform_matrix

        matrix = uniform_matrix(n, load)
        switch = SprinklersSwitch.from_rates(matrix, seed=placement_seed)
        traffic = TrafficGenerator(matrix, np.random.default_rng(traffic_seed))
        metrics = SimulationMetrics(keep_samples=False)
        for slot, packets in traffic.slots(600):
            for packet in switch.step(slot, packets):
                metrics.observe_departure(packet, measure=True)
        for packet in switch.drain(40 * n):
            metrics.observe_departure(packet, measure=True)
        assert metrics.reordering.late_packets == 0
        assert switch.conservation_ok()
