"""Unit tests for the packet model (switching/packet.py)."""

import pytest

from repro.switching.packet import Packet


class TestPacket:
    def test_fields(self):
        p = Packet(input_port=1, output_port=2, arrival_slot=3, seq=4, flow_id=5)
        assert p.voq == (1, 2)
        assert p.arrival_slot == 3
        assert p.seq == 4
        assert p.flow_id == 5
        assert not p.fake

    def test_delay_requires_departure(self):
        p = Packet(input_port=0, output_port=0, arrival_slot=10)
        with pytest.raises(ValueError):
            _ = p.delay
        p.departure_slot = 25
        assert p.delay == 15

    def test_stripe_defaults(self):
        p = Packet(input_port=0, output_port=0, arrival_slot=0)
        assert p.stripe_size == 0
        assert p.stripe_id == -1
        assert p.stripe_pos == -1

    def test_repr_mentions_stripe_and_fake(self):
        p = Packet(input_port=0, output_port=1, arrival_slot=2, fake=True)
        p.stripe_size = 4
        p.stripe_id = 9
        p.stripe_pos = 2
        text = repr(p)
        assert "stripe=9@2/4" in text
        assert "fake" in text

    def test_slots_prevent_new_attributes(self):
        p = Packet(input_port=0, output_port=0, arrival_slot=0)
        with pytest.raises(AttributeError):
            p.color = "red"
