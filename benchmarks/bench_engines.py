"""Benchmark: vectorized batch engine vs per-packet object engine.

Runs a Fig. 6-style configuration (uniform traffic, one hot load) on both
engines for every switch the fast path models, asserts result parity
(same seeds must give the same numbers) and reports the wall-clock
speedup.  At paper scale —

    REPRO_BENCH_SLOTS=200000 python -m pytest benchmarks/bench_engines.py -s

— the vectorized engine must be at least 5x faster on the Sprinklers
data path; at the reduced default scale the speedup is still reported
but only asserted to exceed 1x (fixed vectorization overheads dominate
short runs, which is exactly why the object engine remains the default
for quick interactive work).

Knobs: ``REPRO_BENCH_MIN_SPEEDUP`` overrides the full-scale bar for the
fully array-replayed switches and ``REPRO_BENCH_MIN_SPEEDUP_FRAMES`` the
bar for the frame-at-a-time switches PF and FOFF.  Since the
array-stepped formation engine (``repro.sim.kernels.frames``) replaced
the per-cycle scalar recursion, the frame switches clear the same 5x
full-scale bar as everyone else; ``test_frame_formation_attribution``
isolates the formation stage so the attribution stays visible (vector
formation vs the retained scalar reference, and formation's share of the
end-to-end replay).  The hard wall-clock assertions are skipped
automatically inside CI sandboxes (``CI`` set, the convention every
major CI system follows, or ``REPRO_BENCH_SKIP_PERF``) where
noisy-neighbor throttling makes them flaky — parity assertions always
run, everywhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import models
from repro.sim.experiment import run_single
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_n, bench_slots, emit, write_bench_artifact

#: Every switch with a registered vectorized kernel is benchmarked; a new
#: kernel enrolls automatically (and the registry-coverage CI step fails
#: if one silently disappears).
FAST_ENGINE_SWITCHES = models.available(engine="vectorized")

#: Wall-clock ratio the fast engine must beat at paper scale (>= 100k
#: slots); below that, fixed overheads make the bar meaningless.
FULL_SCALE_SLOTS = 100_000
FULL_SCALE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))
#: The frame switches' formation stage is array-stepped (one vector op
#: pass per fabric cycle, idle spans skipped), so PF/FOFF now clear the
#: same full-scale bar as the fully array-replayed switches (measured
#: 8-15x on the reference container; the old scalar-formation bar was
#: 1.5).
FRAME_SWITCHES = ("pf", "foff")
FRAME_SCALE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_FRAMES", "5.0")
)
#: Full-scale bar for the formation stage itself: the array-stepped
#: engine must beat the retained scalar reference by this much
#: (test_frame_formation_attribution).
FORMATION_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_FORMATION", "2.0")
)
#: Wall-clock ratio seed-batched replication must beat over seed-by-seed
#: replication (same engine, same per-seed values — see
#: test_batched_replication).  The win comes from amortizing per-seed
#: array-call overheads, so it is bounded (typically 1.1-1.4x in the
#: short-replication regime on the reference container); the default bar
#: asserts the batched path never loses beyond single-core timer noise.
BATCH_REPLICATION_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_BATCH", "0.95")
)
#: Replications and slots for the batched-replication row: many short
#: seeds — exactly the regime multi-seed stacking is built for.  The
#: slot cap keeps per-seed event counts well below the stacked-group
#: target so the benchmark genuinely measures multi-seed stacks (group
#: size 4 at the defaults), not the single-seed fast pipeline.
BATCH_REPLICATIONS = int(os.environ.get("REPRO_BENCH_BATCH_REPS", "64"))
BATCH_SLOTS_CAP = 250
#: Full-scale bar for the two-stage fabric row: the chained vectorized
#: replay (KernelStage per stage + link coupling) against the chained
#: object replay.  The coupling layer is pure array work, so the fabric
#: keeps most of the single-switch speedup (measured 4-10x on the
#: reference container); the default bar is deliberately below the
#: single-switch 5x to leave room for the per-window coupling overhead.
FABRIC_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SPEEDUP_FABRIC", "3.0")
)
FABRIC_NAME = "leaf-spine"
LOAD = 0.9


def _perf_assertions_disabled() -> bool:
    """True inside CI sandboxes, where wall-clock bars are meaningless."""
    return bool(
        os.environ.get("CI") or os.environ.get("REPRO_BENCH_SKIP_PERF")
    )


def _time_run(engine: str, switch: str, matrix, slots: int, repeats: int = 1):
    """Run once per repeat; report the result and the *minimum* wall-clock.

    Minimum-of-N is the standard steady-state estimator (it is what
    ``timeit`` reports): the vectorized engine's first large call pays
    one-off costs — page faults for the batch arrays, allocator growth —
    that say nothing about either engine's throughput.  The object engine
    allocates per packet and has no such cliff, so it runs once.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_single(
            switch,
            matrix,
            slots,
            seed=0,
            load_label=LOAD,
            keep_samples=False,
            engine=engine,
        )
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.fixture(scope="module")
def engine_rows():
    n = bench_n()
    slots = bench_slots()
    matrix = uniform_matrix(n, LOAD)
    rows = []
    for switch in FAST_ENGINE_SWITCHES:
        fast, t_fast = _time_run("vectorized", switch, matrix, slots, repeats=2)
        obj, t_obj = _time_run("object", switch, matrix, slots)
        rows.append(
            {
                "switch": switch,
                "object_s": t_obj,
                "vectorized_s": t_fast,
                "speedup": t_obj / t_fast,
                "obj": obj,
                "fast": fast,
            }
        )
    return rows


def test_engine_parity(engine_rows):
    """Same seeds, same physics: every reported number must agree.

    The object engine is the ordering-audit oracle; the vectorized engine
    inherits its verdicts only because these numbers are identical.
    """
    for row in engine_rows:
        obj, fast = row["obj"], row["fast"]
        assert fast.injected == obj.injected, row["switch"]
        assert fast.departed == obj.departed, row["switch"]
        assert fast.measured_packets == obj.measured_packets, row["switch"]
        assert fast.late_packets == obj.late_packets, row["switch"]
        # The acceptance bar is 1% on mean delay; the engines actually
        # agree exactly, so pin the stronger property.
        assert fast.mean_delay == pytest.approx(
            obj.mean_delay, rel=1e-12
        ), row["switch"]
        assert fast.throughput == pytest.approx(
            obj.throughput, rel=1e-12
        ), row["switch"]


def test_ordering_oracle_cross_check(engine_rows):
    """Zero reordering for the order-preserving switches, on both engines."""
    for row in engine_rows:
        if row["switch"] != "load-balanced":
            assert row["obj"].late_packets == 0, row["switch"]
            assert row["fast"].late_packets == 0, row["switch"]


def test_engine_speedup(engine_rows):
    slots = bench_slots()
    lines = [
        f"{'switch':16s} {'object':>9s} {'vectorized':>11s} {'speedup':>8s}"
    ]
    for row in engine_rows:
        lines.append(
            f"{row['switch']:16s} {row['object_s']:8.2f}s "
            f"{row['vectorized_s']:10.3f}s {row['speedup']:7.1f}x"
        )
    emit(
        f"Engine shoot-out (N={bench_n()}, load {LOAD}, {slots} slots)",
        "\n".join(lines),
    )
    write_bench_artifact(
        "engines",
        {
            "shootout": [
                {
                    "switch": row["switch"],
                    "object_s": row["object_s"],
                    "vectorized_s": row["vectorized_s"],
                    "speedup": row["speedup"],
                }
                for row in engine_rows
            ]
        },
    )
    if _perf_assertions_disabled():
        pytest.skip(
            "wall-clock assertions disabled in CI sandbox "
            "(parity tests above still ran); unset CI / "
            "REPRO_BENCH_SKIP_PERF to enforce the speedup bar"
        )
    for row in engine_rows:
        if slots < FULL_SCALE_SLOTS:
            floor = 1.0
        elif row["switch"] in FRAME_SWITCHES:
            floor = FRAME_SCALE_SPEEDUP
        else:
            floor = FULL_SCALE_SPEEDUP
        assert row["speedup"] >= floor, (
            f"{row['switch']}: {row['speedup']:.1f}x < {floor}x "
            f"at {slots} slots"
        )


def test_frame_formation_attribution(engine_rows):
    """Isolate frame formation: where the PF/FOFF speedup comes from.

    Times the array-stepped formation engine against the retained scalar
    reference on the same arrival batch, and reports formation's share
    of the end-to-end vectorized replay — so a regression in either the
    formation engine or the rest of the pipeline shows up attributed,
    not blended.  The full-scale assertion pins the vector engine at
    >= REPRO_BENCH_MIN_SPEEDUP_FORMATION x the scalar reference.
    """
    import numpy as np

    from repro.sim.kernels.frames import (
        build_frame_schedule,
        foff_rule,
        pf_rule,
        reference_frame_schedule,
    )
    from repro.sim.rng import derive_seed
    from repro.traffic.batch import BatchTrafficGenerator

    n = bench_n()
    slots = bench_slots()
    matrix = uniform_matrix(n, LOAD)
    batch = BatchTrafficGenerator(
        matrix, np.random.default_rng(derive_seed(0, "traffic"))
    ).draw(slots)
    end_to_end = {
        row["switch"]: row["vectorized_s"] for row in engine_rows
    }
    rules = {"pf": pf_rule(max(1, n // 2)), "foff": foff_rule()}
    lines = [
        f"{'switch':8s} {'vector':>8s} {'scalar-ref':>11s} "
        f"{'speedup':>8s} {'of replay':>10s}"
    ]
    ratios = {}
    for switch, rule in rules.items():
        # Like-for-like methodology: min-of-2 on BOTH sides, so the
        # asserted ratio carries no warm-up asymmetry.
        t_vec = t_ref = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            vec = build_frame_schedule(batch, rule)
            t_vec = min(t_vec, time.perf_counter() - start)
        for _ in range(2):
            start = time.perf_counter()
            ref = reference_frame_schedule(batch, rule)
            t_ref = min(t_ref, time.perf_counter() - start)
        # The benchmark doubles as a full-scale parity check.
        order_v = np.lexsort((vec.start, vec.voq))
        order_r = np.lexsort((ref.start, ref.voq))
        for field_v, field_r in zip(vec, ref):
            np.testing.assert_array_equal(
                field_v[order_v], field_r[order_r]
            )
        ratios[switch] = t_ref / t_vec
        share = t_vec / end_to_end[switch]
        lines.append(
            f"{switch:8s} {t_vec:7.3f}s {t_ref:10.3f}s "
            f"{ratios[switch]:7.1f}x {share:9.1%}"
        )
    emit(
        f"Frame-formation attribution (N={n}, load {LOAD}, {slots} slots)",
        "\n".join(lines),
    )
    write_bench_artifact("engines", {"formation_speedups": ratios})
    if _perf_assertions_disabled():
        pytest.skip(
            "wall-clock assertion disabled in CI sandbox (the formation "
            "parity assertions above still ran)"
        )
    if slots >= FULL_SCALE_SLOTS:
        for switch, ratio in ratios.items():
            assert ratio >= FORMATION_SPEEDUP, (
                f"{switch} formation: {ratio:.1f}x < {FORMATION_SPEEDUP}x"
            )


def test_fabric_engines():
    """Two-stage fabric: chained-engine parity, then the wall-clock bar.

    The composite run path re-couples every stage's finalized departures
    into the next stage's arrival windows; this row pins (a) that the
    chained vectorized replay and the chained object replay report
    identical numbers — including the per-stage delay decomposition —
    and (b) that the chain keeps a healthy share of the single-switch
    speedup (REPRO_BENCH_MIN_SPEEDUP_FABRIC at full scale).
    """
    n = bench_n()
    slots = bench_slots()
    matrix = uniform_matrix(n, LOAD)
    fast, t_fast = _time_run(
        "vectorized", FABRIC_NAME, matrix, slots, repeats=2
    )
    obj, t_obj = _time_run("object", FABRIC_NAME, matrix, slots)
    speedup = t_obj / t_fast
    emit(
        f"Two-stage fabric shoot-out ({FABRIC_NAME}, N={n}, load {LOAD}, "
        f"{slots} slots)",
        f"object {t_obj:8.2f}s  vectorized {t_fast:8.3f}s  "
        f"{speedup:6.1f}x",
    )
    write_bench_artifact(
        "engines",
        {
            "fabric": {
                "name": FABRIC_NAME,
                "object_s": t_obj,
                "vectorized_s": t_fast,
                "speedup": speedup,
            }
        },
    )
    assert fast.to_dict() == obj.to_dict()
    stages = int(fast.extras["stages"])
    decomposition = sum(
        fast.extras[f"stage{k}_mean_delay"] for k in range(stages)
    )
    assert decomposition == pytest.approx(fast.mean_delay, rel=1e-12)
    if _perf_assertions_disabled():
        pytest.skip(
            "wall-clock assertion disabled in CI sandbox (the fabric "
            "parity assertions above still ran)"
        )
    floor = FABRIC_SPEEDUP if slots >= FULL_SCALE_SLOTS else 1.0
    assert speedup >= floor, (
        f"{FABRIC_NAME}: {speedup:.1f}x < {floor}x at {slots} slots"
    )


def test_batched_replication():
    """Seed-batched replication: identical values, amortized wall-clock.

    ``replicate(engine="vectorized", batch_seeds=True)`` stacks all
    seeds into one kernel pass (cache-sized seed groups) and folds the
    per-seed metrics with segmented reductions.  The per-seed *values*
    must match seed-by-seed replication exactly — asserted everywhere —
    and the stacked pass must not lose on wall-clock in the many-short-
    replications regime it exists for (asserted outside CI sandboxes;
    raise the bar with REPRO_BENCH_MIN_SPEEDUP_BATCH).
    """
    from repro.sim.replication import replicate

    n = bench_n()
    slots = min(bench_slots(), BATCH_SLOTS_CAP)
    matrix = uniform_matrix(n, LOAD)
    kwargs = dict(
        num_slots=slots,
        replications=BATCH_REPLICATIONS,
        engine="vectorized",
        load_label=LOAD,
    )

    def run_pair():
        t0 = time.perf_counter()
        seq = replicate("sprinklers", matrix, **kwargs)
        t1 = time.perf_counter()
        bat = replicate("sprinklers", matrix, **kwargs, batch_seeds=True)
        t2 = time.perf_counter()
        return seq, bat, t1 - t0, t2 - t1

    run_pair()  # warm both paths (allocator growth, import costs)
    best_seq, best_bat = float("inf"), float("inf")
    for _ in range(5):
        seq, bat, t_seq, t_bat = run_pair()
        assert bat.values == seq.values  # exact per-seed equality, always
        best_seq = min(best_seq, t_seq)
        best_bat = min(best_bat, t_bat)
    speedup = best_seq / best_bat
    emit(
        "Seed-batched replication (sprinklers)",
        f"{BATCH_REPLICATIONS} seeds x {slots} slots: seed-by-seed "
        f"{best_seq:.3f}s, batched {best_bat:.3f}s, {speedup:.2f}x",
    )
    write_bench_artifact(
        "engines",
        {
            "batched_replication": {
                "replications": BATCH_REPLICATIONS,
                "slots": slots,
                "sequential_s": best_seq,
                "batched_s": best_bat,
                "speedup": speedup,
            }
        },
    )
    if _perf_assertions_disabled():
        pytest.skip(
            "wall-clock assertion disabled in CI sandbox (the per-seed "
            "value-equality assertions above still ran)"
        )
    assert speedup >= BATCH_REPLICATION_SPEEDUP, (
        f"batched replication {speedup:.2f}x < "
        f"{BATCH_REPLICATION_SPEEDUP}x"
    )
