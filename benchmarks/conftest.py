"""Shared configuration for the benchmark harness.

Every paper artifact (Table 1, Figures 5-7) has one benchmark module that
regenerates it and prints the same rows/series the paper reports.  The
simulation figures run at a reduced default scale so the suite stays
responsive; set the environment variables below for full fidelity (the
settings used in EXPERIMENTS.md):

* ``REPRO_BENCH_N``      — switch size for Figs. 6-7 (paper: 32)
* ``REPRO_BENCH_SLOTS``  — slots per simulated point (paper-scale: 200000)
* ``REPRO_BENCH_LOADS``  — comma-separated load levels
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["bench_n", "bench_slots", "bench_loads", "emit"]


def bench_n(default: int = 16) -> int:
    """Switch size for the simulation benchmarks."""
    return int(os.environ.get("REPRO_BENCH_N", default))


def bench_slots(default: int = 15_000) -> int:
    """Slots per simulated point."""
    return int(os.environ.get("REPRO_BENCH_SLOTS", default))


def bench_loads(default: Sequence[float] = (0.1, 0.5, 0.9)) -> Sequence[float]:
    """Load levels for the delay-vs-load sweeps."""
    raw = os.environ.get("REPRO_BENCH_LOADS")
    if raw is None:
        return tuple(default)
    return tuple(float(tok) for tok in raw.split(","))


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===\n{text}")
