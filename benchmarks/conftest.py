"""Shared configuration for the benchmark harness.

Every paper artifact (Table 1, Figures 5-7) has one benchmark module that
regenerates it and prints the same rows/series the paper reports.  The
simulation figures run at a reduced default scale so the suite stays
responsive; set the environment variables below for full fidelity (the
settings used in EXPERIMENTS.md):

* ``REPRO_BENCH_N``      — switch size for Figs. 6-7 (paper: 32)
* ``REPRO_BENCH_SLOTS``  — slots per simulated point (paper-scale: 200000)
* ``REPRO_BENCH_LOADS``  — comma-separated load levels

Every bench module also writes a machine-readable artifact
(``BENCH_<name>.json``, via :func:`write_bench_artifact`) with its
speedups / wall times and the process peak RSS, so CI runs leave a
comparable record instead of only console text.  The artifacts land in
``$REPRO_BENCH_ARTIFACT_DIR`` (default: the working directory).
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

__all__ = [
    "bench_n",
    "bench_slots",
    "bench_loads",
    "emit",
    "write_bench_artifact",
    "bench_mean_s",
]


def bench_n(default: int = 16) -> int:
    """Switch size for the simulation benchmarks."""
    return int(os.environ.get("REPRO_BENCH_N", default))


def bench_slots(default: int = 15_000) -> int:
    """Slots per simulated point."""
    return int(os.environ.get("REPRO_BENCH_SLOTS", default))


def bench_loads(default: Sequence[float] = (0.1, 0.5, 0.9)) -> Sequence[float]:
    """Load levels for the delay-vs-load sweeps."""
    raw = os.environ.get("REPRO_BENCH_LOADS")
    if raw is None:
        return tuple(default)
    return tuple(float(tok) for tok in raw.split(","))


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===\n{text}")


def bench_mean_s(benchmark) -> Optional[float]:
    """Mean seconds of a completed ``benchmark`` fixture run, if any.

    ``--benchmark-disable`` (and some sandboxed runs) leave no stats;
    artifacts then record ``None`` rather than failing the bench.
    """
    try:
        return float(benchmark.stats.stats.mean)
    except Exception:
        return None


def write_bench_artifact(name: str, payload: dict) -> str:
    """Merge ``payload`` into ``BENCH_<name>.json``; returns the path.

    Multiple tests in one module call this with the same ``name`` and
    different keys — sections accumulate in one file.  Every write
    refreshes the shared fields (timestamp, peak RSS, scale knobs) so
    the file always reflects the full run that produced it.
    """
    from repro import telemetry

    directory = os.environ.get("REPRO_BENCH_ARTIFACT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data["bench"] = name
    data["generated_at"] = time.time()
    data["peak_rss_bytes"] = telemetry.peak_rss_bytes()
    data["scale"] = {
        "n": bench_n(),
        "slots": bench_slots(),
        "loads": list(bench_loads()),
    }
    data.update(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path
