"""Benchmark: the scenario registry on the vectorized engine + the store.

Runs every registered scenario on the Sprinklers data path (vectorized
engine) at one hot load and reports the per-scenario delay profile — the
extension counterpart of the paper's Figs. 6-7 rows.  A second pass
through the experiment store then demonstrates (and asserts) the cache:
identical configurations are served from disk with zero recomputation,
orders of magnitude faster than simulating.

    REPRO_BENCH_N=32 REPRO_BENCH_SLOTS=200000 \
        python -m pytest -q -s benchmarks/bench_scenarios.py
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios import get_scenario, list_scenarios
from repro.sim.experiment import run_single
from repro.store import ExperimentStore

from benchmarks.conftest import bench_n, bench_slots, emit, write_bench_artifact

LOAD = 0.9
SWITCH = "sprinklers"


@pytest.fixture(scope="module")
def scenario_rows(tmp_path_factory):
    store = ExperimentStore(tmp_path_factory.mktemp("bench-store"))
    n = bench_n()
    slots = bench_slots()
    rows = []
    for name in list_scenarios():
        start = time.perf_counter()
        result = run_single(
            SWITCH,
            scenario=name,
            n=n,
            load=LOAD,
            num_slots=slots,
            seed=0,
            engine="vectorized",
            keep_samples=False,
            store=store,
        )
        cold = time.perf_counter() - start
        start = time.perf_counter()
        cached = run_single(
            SWITCH,
            scenario=name,
            n=n,
            load=LOAD,
            num_slots=slots,
            seed=0,
            engine="vectorized",
            keep_samples=False,
            store=store,
        )
        warm = time.perf_counter() - start
        rows.append(
            {
                "scenario": name,
                "result": result,
                "cached": cached,
                "cold_s": cold,
                "warm_s": warm,
            }
        )
    rows.append({"store": store})
    return rows


def test_scenario_profiles(scenario_rows):
    """Every scenario simulates, measures packets, and keeps ordering."""
    lines = [
        f"{'scenario':20s} {'mean delay':>11s} {'measured':>9s} "
        f"{'late':>5s} {'cold':>8s} {'cached':>8s}"
    ]
    for row in scenario_rows[:-1]:
        r = row["result"]
        lines.append(
            f"{row['scenario']:20s} {r.mean_delay:11.2f} "
            f"{r.measured_packets:9d} {r.late_packets:5d} "
            f"{row['cold_s']:7.2f}s {row['warm_s']:7.3f}s"
        )
        assert r.measured_packets > 0, row["scenario"]
        assert r.is_ordered, row["scenario"]  # Sprinklers never reorders
    emit(
        f"Scenario sweep ({SWITCH}, N={bench_n()}, load {LOAD}, "
        f"{bench_slots()} slots, vectorized engine + store)",
        "\n".join(lines),
    )
    write_bench_artifact(
        "scenarios",
        {
            "sweep": [
                {
                    "scenario": row["scenario"],
                    "cold_s": row["cold_s"],
                    "warm_s": row["warm_s"],
                    "cache_speedup": row["cold_s"] / max(row["warm_s"], 1e-9),
                }
                for row in scenario_rows[:-1]
            ]
        },
    )


def test_store_serves_cache_hits(scenario_rows):
    """The second pass is all hits and returns identical numbers."""
    store = scenario_rows[-1]["store"]
    scenarios = scenario_rows[:-1]
    assert store.hits == len(scenarios)
    assert store.misses == len(scenarios)
    for row in scenarios:
        assert row["cached"].mean_delay == row["result"].mean_delay
        assert row["cached"].measured_packets == row["result"].measured_packets
