"""Micro-benchmarks of the building blocks.

Not a paper artifact, but the numbers that determine whether the paper's
"constant time at each port" claim (§1.2) survives contact with an
implementation: LSF's bitmap scan + FIFO pop, stripe insertion, OLS
generation, per-slot switch stepping, and traffic generation throughput.
"""

import numpy as np
import pytest

from repro.core.dyadic import DyadicInterval
from repro.core.latin import weakly_uniform_ols
from repro.core.lsf import LsfInputScheduler
from repro.core.sprinklers_switch import SprinklersSwitch
from repro.core.striping import Stripe
from repro import models
from repro.switching.packet import Packet
from repro.traffic.generator import TrafficGenerator
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_mean_s, write_bench_artifact

N = 64


def make_stripe(stripe_id: int, start: int, size: int) -> Stripe:
    packets = [
        Packet(input_port=0, output_port=0, arrival_slot=0, seq=k)
        for k in range(size)
    ]
    return Stripe(stripe_id, 0, 0, DyadicInterval(start, size), packets)


def test_lsf_insert_serve_cycle(benchmark):
    """Insert a size-8 stripe and serve its 8 rows: 9 O(1) operations."""
    lsf = LsfInputScheduler(N)

    def cycle():
        lsf.insert(make_stripe(0, 8, 8))
        for row in range(8, 16):
            lsf.serve(row)

    benchmark(cycle)
    assert lsf.occupancy == 0
    write_bench_artifact(
        "components", {"lsf_cycle_mean_s": bench_mean_s(benchmark)}
    )


def test_ols_generation(benchmark):
    """The O(N log N) weakly uniform OLS draw (paper section 3.3.3)."""
    rng = np.random.default_rng(0)
    square = benchmark(weakly_uniform_ols, 256, rng)
    assert len(square) == 256
    write_bench_artifact(
        "components", {"ols_generation_mean_s": bench_mean_s(benchmark)}
    )


def test_sprinklers_slot_rate(benchmark):
    """Steady-state slots/second of a loaded Sprinklers switch."""
    matrix = uniform_matrix(32, 0.8)
    switch = SprinklersSwitch.from_rates(matrix, seed=0)
    traffic = TrafficGenerator(matrix, np.random.default_rng(1))
    stream = list(traffic.slots(4000))
    cursor = {"i": 0}

    def hundred_slots():
        i = cursor["i"]
        for slot, packets in stream[i : i + 100]:
            switch.step(slot, packets)
        cursor["i"] = i + 100

    benchmark.pedantic(hundred_slots, rounds=30, iterations=1)
    write_bench_artifact(
        "components",
        {"sprinklers_100slots_mean_s": bench_mean_s(benchmark)},
    )


@pytest.mark.parametrize("name", ["load-balanced", "ufs", "foff", "pf", "cms"])
def test_baseline_slot_rate(benchmark, name):
    """Per-slot cost of each baseline switch at N=32, 80% load."""
    matrix = uniform_matrix(32, 0.8)
    switch = models.build(name, 32, matrix, seed=0)
    traffic = TrafficGenerator(matrix, np.random.default_rng(1))
    stream = list(traffic.slots(4000))
    cursor = {"i": 0}

    def hundred_slots():
        i = cursor["i"]
        for slot, packets in stream[i : i + 100]:
            switch.step(slot, packets)
        cursor["i"] = i + 100

    benchmark.pedantic(hundred_slots, rounds=30, iterations=1)
    write_bench_artifact(
        "components",
        {f"{name}_100slots_mean_s": bench_mean_s(benchmark)},
    )


def test_traffic_generation_rate(benchmark):
    """Vectorized packet-source throughput (slots/second)."""
    matrix = uniform_matrix(32, 0.9)

    def make_5000_slots():
        gen = TrafficGenerator(matrix, np.random.default_rng(2))
        count = 0
        for _, packets in gen.slots(5000):
            count += len(packets)
        return count

    count = benchmark.pedantic(make_5000_slots, rounds=5, iterations=1)
    assert count > 0.8 * 0.9 * 32 * 5000
    write_bench_artifact(
        "components",
        {"traffic_5000slots_mean_s": bench_mean_s(benchmark)},
    )
