"""Benchmark E4: regenerate the paper's Figure 7 (delay vs load, diagonal).

The diagonal pattern (P(j = i) = 1/2) concentrates half of each input's
traffic in one VOQ — the workload where rate-proportional striping earns
its keep.  Shape assertions mirror bench_fig6.
"""

import pytest

from repro.figures.delay_figures import generate
from repro.figures.render import format_table

from benchmarks.conftest import (
    bench_loads,
    bench_mean_s,
    bench_n,
    bench_slots,
    emit,
    write_bench_artifact,
)


@pytest.fixture(scope="module")
def fig7_rows():
    return generate(
        "diagonal",
        n=bench_n(),
        loads=bench_loads(),
        num_slots=bench_slots(),
        seed=0,
    )


def test_fig7_sweep(benchmark, fig7_rows):
    benchmark.pedantic(
        generate,
        kwargs=dict(
            pattern="diagonal",
            n=bench_n(),
            loads=(bench_loads()[0],),
            num_slots=max(2000, bench_slots() // 10),
            switches=("sprinklers",),
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    rows = fig7_rows
    emit("Figure 7 series (diagonal traffic)", format_table(rows))
    write_bench_artifact(
        "fig7",
        {"cell_mean_s": bench_mean_s(benchmark), "rows": len(rows)},
    )

    loads = sorted({row["load"] for row in rows})
    table = {(row["switch"], row["load"]): row for row in rows}
    light = loads[0]

    for (name, load), row in table.items():
        if name != "baseline-lb":
            assert row["late_packets"] == 0, (name, load)

    for load in loads:
        base = table[("baseline-lb", load)]["mean_delay"]
        for name in ("ufs", "foff", "pf", "sprinklers"):
            assert base < table[(name, load)]["mean_delay"]

    assert (
        table[("sprinklers", light)]["mean_delay"]
        < table[("ufs", light)]["mean_delay"]
    )
