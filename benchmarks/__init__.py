"""Benchmark harness package.

Benchmarks import their shared knobs as ``from benchmarks.conftest import
...`` — an absolute path that cannot collide with ``tests/conftest.py``
under pytest's importlib import mode.
"""
