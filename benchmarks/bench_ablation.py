"""Ablation benches: the design choices DESIGN.md calls out (A1, A2, A4).

Each ablation removes one of the three Sprinklers ingredients (§3.1:
permutation, randomization, variable-size striping) and measures the load-
balance penalty analytically (max per-queue arrival rate vs the 1/N
service rate) and, for the sizing ablation, in simulation.
"""

import numpy as np
import pytest

from repro.core.interval_assignment import PlacementMode, StripeIntervalAssignment
from repro.sim.experiment import run_single
from repro.analysis.stability import worst_case_rates
from repro.traffic.matrices import diagonal_matrix, lognormal_matrix

from benchmarks.conftest import bench_n, bench_slots, emit, write_bench_artifact


def max_load(matrix, mode, seed=0, fixed=None):
    rng = np.random.default_rng(seed) if mode != PlacementMode.IDENTITY else None
    assignment = StripeIntervalAssignment(
        matrix, rng=rng, mode=mode, fixed_stripe_size=fixed
    )
    return assignment.max_queue_load()


def test_ablation_permutation_randomization(benchmark):
    """A1: random OLS vs deterministic circulant placement.

    Against the adversarial (Theorem 1 extremal) rate pattern the identity
    placement is overloaded by construction while random placements below
    the threshold never are.
    """
    n = 32
    # Identity placement faces the extremal vector at exactly the
    # Theorem 1 threshold: overloaded by construction.  Random placements
    # are evaluated just below the threshold, where Theorem 1 makes every
    # one of them safe.
    at_threshold = np.zeros((n, n))
    at_threshold[0, :] = worst_case_rates(n, scale=1.0)
    below = np.zeros((n, n))
    below[0, :] = worst_case_rates(n, scale=0.999)

    identity_load = max_load(at_threshold, PlacementMode.IDENTITY)
    random_loads = benchmark.pedantic(
        lambda: [max_load(below, PlacementMode.OLS, seed=s) for s in range(50)],
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A1: adversarial rates, identity vs random placement",
        f"identity max queue load at threshold: {identity_load:.5f}  "
        f"(1/N = {1 / n:.5f})\n"
        f"random placements overloaded just below threshold: "
        f"{sum(1 for v in random_loads if v >= 1 / n)}/50",
    )
    assert identity_load >= 1.0 / n - 1e-12
    assert all(v < 1.0 / n for v in random_loads)
    write_bench_artifact(
        "ablation",
        {
            "a1_placement": {
                "identity_load": identity_load,
                "random_overloaded": sum(
                    1 for v in random_loads if v >= 1 / n
                ),
                "trials": len(random_loads),
            }
        },
    )


def test_ablation_stripe_sizing(benchmark):
    """A2: rate-proportional dyadic sizing vs one-size-fits-all.

    Under skewed (log-normal) rates, fixed-size striping either
    overloads queues (sizes too small for hot VOQs) or inflates light-load
    delay (sizes too large for cold VOQs — the UFS failure mode).
    """
    n = 16
    rng = np.random.default_rng(7)
    matrix = lognormal_matrix(n, 0.9, sigma=1.5, rng=rng)

    variable = max_load(matrix, PlacementMode.OLS, seed=1)
    fixed_small = max_load(matrix, PlacementMode.OLS, seed=1, fixed=2)
    fixed_full = max_load(matrix, PlacementMode.OLS, seed=1, fixed=n)

    # Delay cost of full-width (UFS-like) stripes at light load:
    light = diagonal_matrix(n, 0.2)
    spr = run_single("sprinklers", light, bench_slots(), seed=2, load_label=0.2)
    ufs = benchmark.pedantic(
        run_single,
        args=("ufs", light, bench_slots()),
        kwargs=dict(seed=2, load_label=0.2),
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation A2: variable vs fixed stripe sizes",
        f"max queue load, skewed rates: variable={variable:.5f} "
        f"fixed(2)={fixed_small:.5f} fixed(N)={fixed_full:.5f} "
        f"(1/N = {1 / n:.5f})\n"
        f"light-load mean delay: sprinklers={spr.mean_delay:.1f} "
        f"full-frames(UFS)={ufs.mean_delay:.1f}",
    )
    assert variable < 1.0 / n
    assert fixed_small > variable  # hot VOQs overload narrow stripes
    assert spr.mean_delay < ufs.mean_delay  # cold VOQs hate full frames
    write_bench_artifact(
        "ablation",
        {
            "a2_stripe_sizing": {
                "variable_load": variable,
                "fixed_small_load": fixed_small,
                "fixed_full_load": fixed_full,
                "sprinklers_light_delay": spr.mean_delay,
                "ufs_light_delay": ufs.mean_delay,
            }
        },
    )


def test_ablation_ols_coordination(benchmark):
    """A4: OLS-coordinated vs independent per-input permutations.

    Independent permutations balance each input but let outputs collide:
    the worst output-side queue load grows, which the OLS's
    every-column-a-permutation property forbids.
    """
    n = 32
    matrix = diagonal_matrix(n, 0.95)

    def worst_output_load(mode, trials=30):
        worst = []
        for seed in range(trials):
            assignment = StripeIntervalAssignment(
                matrix, rng=np.random.default_rng(seed), mode=mode
            )
            worst.append(
                max(
                    float(assignment.output_port_loads(j).max())
                    for j in range(n)
                )
            )
        return float(np.mean(worst)), float(np.max(worst))

    ols_mean, ols_max = benchmark.pedantic(
        worst_output_load, args=(PlacementMode.OLS,), rounds=1, iterations=1
    )
    ind_mean, ind_max = worst_output_load(PlacementMode.INDEPENDENT)
    emit(
        "Ablation A4: OLS coordination vs independent permutations",
        f"worst output-side queue load (mean over 30 seeds): "
        f"OLS={ols_mean:.5f} independent={ind_mean:.5f} (1/N = {1 / n:.5f})\n"
        f"worst case over seeds: OLS={ols_max:.5f} independent={ind_max:.5f}",
    )
    assert ind_mean > ols_mean  # coordination strictly helps on average
    write_bench_artifact(
        "ablation",
        {
            "a4_ols_coordination": {
                "ols_mean": ols_mean,
                "ols_max": ols_max,
                "independent_mean": ind_mean,
                "independent_max": ind_max,
            }
        },
    )
