"""Benchmark: the telemetry layer's overhead contract.

The instrumentation in ``repro.telemetry`` is wired through the replay
hot loops (``fast_engine``, ``composite``, the kernels), so this module
pins the two properties that make that acceptable:

* **Disabled is free.** With telemetry off (the default) every probe is
  one flag check; an instrumented streamed run must stay within noise of
  itself run-to-run, and the per-probe disabled cost is asserted to be
  nanoseconds, not microseconds.
* **Enabled is cheap.** Turning the full span/metric capture on may not
  slow the streamed replay by more than
  ``REPRO_BENCH_MAX_TELEMETRY_OVERHEAD`` (default 1.15x) — the spans
  bracket windows, not packets, so the cost amortizes over thousands of
  slots.

Result parity (enabled and disabled runs report bit-identical numbers)
is asserted everywhere, CI sandboxes included; the wall-clock bars skip
inside CI like ``bench_engines.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import telemetry
from repro.sim.experiment import run_single
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_n, bench_slots, emit, write_bench_artifact

LOAD = 0.9
WINDOW_SLOTS = 4096
MAX_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_TELEMETRY_OVERHEAD", "1.15")
)
#: Per-call ceiling for a disabled probe (seconds).  A disabled
#: ``trace()`` is one attribute check + returning a shared handle;
#: 2 microseconds is ~50x the measured cost on the reference container,
#: so this only trips if someone adds real work to the disabled path.
MAX_DISABLED_PROBE_S = float(
    os.environ.get("REPRO_BENCH_MAX_DISABLED_PROBE_S", "2e-6")
)


def _perf_assertions_disabled() -> bool:
    return bool(
        os.environ.get("CI") or os.environ.get("REPRO_BENCH_SKIP_PERF")
    )


def _timed_run(repeats: int = 3):
    """Min-of-N wall clock of one streamed vectorized run."""
    matrix = uniform_matrix(bench_n(), LOAD)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_single(
            "sprinklers",
            matrix,
            bench_slots(),
            seed=0,
            load_label=LOAD,
            keep_samples=False,
            engine="vectorized",
            window_slots=WINDOW_SLOTS,
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def test_enabled_overhead_and_parity():
    """Enabled capture stays under the overhead bar; numbers identical."""
    assert not telemetry.enabled()  # the suite must start disabled
    disabled_result, t_disabled = _timed_run()
    with telemetry.scope():
        enabled_result, t_enabled = _timed_run()
    overhead = t_enabled / t_disabled
    emit(
        f"Telemetry overhead (sprinklers, N={bench_n()}, load {LOAD}, "
        f"{bench_slots()} slots, window {WINDOW_SLOTS})",
        f"disabled {t_disabled:.3f}s  enabled {t_enabled:.3f}s  "
        f"overhead {overhead:.3f}x (bar {MAX_OVERHEAD}x)",
    )
    write_bench_artifact(
        "telemetry",
        {
            "streamed_run": {
                "disabled_s": t_disabled,
                "enabled_s": t_enabled,
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
            }
        },
    )
    # Parity always: telemetry may only *observe*.  The enabled run
    # additionally carries the capture payload in extras — pop it.
    enabled_dict = enabled_result.to_dict()
    assert enabled_dict["extras"].pop("telemetry", None) is not None
    assert enabled_dict == disabled_result.to_dict()
    if _perf_assertions_disabled():
        pytest.skip(
            "wall-clock assertion disabled in CI sandbox (the parity "
            "assertion above still ran)"
        )
    assert overhead <= MAX_OVERHEAD, (
        f"enabled telemetry costs {overhead:.3f}x "
        f"(bar {MAX_OVERHEAD}x at {bench_slots()} slots)"
    )


def test_disabled_probe_cost():
    """A disabled probe is a flag check — nanoseconds, asserted."""
    assert not telemetry.enabled()
    rounds = 200_000
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(rounds):
            telemetry.trace("bench.probe")
            telemetry.count("bench.counter")
        best = min(best, time.perf_counter() - start)
    per_call = best / (2 * rounds)
    emit(
        "Disabled probe cost",
        f"{per_call * 1e9:.0f} ns/probe over {2 * rounds} calls "
        f"(bar {MAX_DISABLED_PROBE_S * 1e9:.0f} ns)",
    )
    write_bench_artifact(
        "telemetry", {"disabled_probe_s": per_call}
    )
    if _perf_assertions_disabled():
        pytest.skip("wall-clock assertion disabled in CI sandbox")
    assert per_call <= MAX_DISABLED_PROBE_S, (
        f"disabled probe costs {per_call * 1e9:.0f} ns "
        f"(bar {MAX_DISABLED_PROBE_S * 1e9:.0f} ns) — something is doing "
        f"work on the disabled path"
    )
