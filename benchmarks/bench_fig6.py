"""Benchmark E3: regenerate the paper's Figure 6 (delay vs load, uniform).

Runs the five-switch sweep at reduced scale by default (see conftest for
the full-fidelity knobs), prints the series, and asserts the paper's
qualitative shape:

* the baseline load-balanced switch is the delay lower envelope;
* UFS is the worst at light load (full-frame accumulation) and improves
  with load;
* Sprinklers is far below UFS at light load and stays flat;
* every switch except the baseline delivers with zero reordering.
"""

import pytest

from repro.figures.delay_figures import generate
from repro.figures.render import format_table

from benchmarks.conftest import (
    bench_loads,
    bench_mean_s,
    bench_n,
    bench_slots,
    emit,
    write_bench_artifact,
)


@pytest.fixture(scope="module")
def fig6_rows():
    return generate(
        "uniform",
        n=bench_n(),
        loads=bench_loads(),
        num_slots=bench_slots(),
        seed=0,
    )


def test_fig6_sweep(benchmark, fig6_rows):
    # Time one (switch, load) cell — the sweep's unit of work — and reuse
    # the module-scoped full sweep for the shape checks.
    benchmark.pedantic(
        generate,
        kwargs=dict(
            pattern="uniform",
            n=bench_n(),
            loads=(bench_loads()[0],),
            num_slots=max(2000, bench_slots() // 10),
            switches=("sprinklers",),
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    rows = fig6_rows
    emit("Figure 6 series (uniform traffic)", format_table(rows))
    write_bench_artifact(
        "fig6",
        {"cell_mean_s": bench_mean_s(benchmark), "rows": len(rows)},
    )

    loads = sorted({row["load"] for row in rows})
    table = {(row["switch"], row["load"]): row for row in rows}
    light, heavy = loads[0], loads[-1]

    for (name, load), row in table.items():
        if name != "baseline-lb":
            assert row["late_packets"] == 0, (name, load)

    for load in loads:
        base = table[("baseline-lb", load)]["mean_delay"]
        for name in ("ufs", "foff", "pf", "sprinklers"):
            assert base < table[(name, load)]["mean_delay"]

    assert (
        table[("sprinklers", light)]["mean_delay"]
        < 0.5 * table[("ufs", light)]["mean_delay"]
    )
    assert (
        table[("ufs", light)]["mean_delay"] > table[("ufs", heavy)]["mean_delay"]
    )
