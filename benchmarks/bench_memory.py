"""Benchmark: windowed (streaming) replay keeps peak memory bounded.

The monolithic vectorized engine materializes a whole run's arrivals (and
every per-stage intermediate array) at once, so its peak memory grows
linearly with ``--slots``; the windowed replay
(``run_single_fast(..., window_slots=W)``) materializes O(W) slots at a
time and folds metrics as it goes, so its peak stays (nearly) flat as
runs grow — that is the property that unlocks multi-million-slot runs.

This module pins both claims with ``tracemalloc`` (which tracks NumPy's
buffers and is measurable per-section, unlike ``ru_maxrss``, which never
decreases within a process):

* the streamed peak at the large size must be well below the monolithic
  peak at the same size (``REPRO_BENCH_MEM_FRACTION``, default 0.5);
* growing the run 4x must grow the streamed peak by far less than 4x
  (``REPRO_BENCH_MEM_GROWTH``, default 2.0 — carried queue state and
  drain tails add a sublinear remainder over the flat window buffers).

Unlike the wall-clock bars in ``bench_engines.py``, these are
*deterministic allocation* measurements, so they also run inside CI
sandboxes.  Scale knobs: ``REPRO_BENCH_N`` and
``REPRO_BENCH_MEM_SLOTS`` (the large size; the small size is a quarter
of it).
"""

from __future__ import annotations

import gc
import os
import tracemalloc

from repro.sim.fast_engine import run_single_fast
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_n, emit, write_bench_artifact

LOAD = 0.9
WINDOW_SLOTS = 4096
LARGE_SLOTS = int(os.environ.get("REPRO_BENCH_MEM_SLOTS", "120000"))
SMALL_SLOTS = LARGE_SLOTS // 4
MEM_FRACTION = float(os.environ.get("REPRO_BENCH_MEM_FRACTION", "0.5"))
MEM_GROWTH = float(os.environ.get("REPRO_BENCH_MEM_GROWTH", "2.0"))


def _peak_bytes(fn) -> int:
    """Peak traced allocation of one call, in bytes."""
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _run(slots: int, window_slots=None) -> None:
    # keep_samples=False: retained per-packet samples are inherently
    # O(run) and identical for both paths; the claim under test is about
    # the *engine's* working set.
    run_single_fast(
        "sprinklers",
        uniform_matrix(bench_n(), LOAD),
        slots,
        seed=0,
        load_label=LOAD,
        keep_samples=False,
        window_slots=window_slots,
    )


def test_streamed_memory_bounded():
    mono_large = _peak_bytes(lambda: _run(LARGE_SLOTS))
    streamed_small = _peak_bytes(
        lambda: _run(SMALL_SLOTS, window_slots=WINDOW_SLOTS)
    )
    streamed_large = _peak_bytes(
        lambda: _run(LARGE_SLOTS, window_slots=WINDOW_SLOTS)
    )
    growth = streamed_large / max(streamed_small, 1)
    fraction = streamed_large / max(mono_large, 1)
    emit(
        f"Peak engine memory (sprinklers, N={bench_n()}, load {LOAD}, "
        f"window {WINDOW_SLOTS})",
        "\n".join(
            [
                f"monolithic @ {LARGE_SLOTS} slots: "
                f"{mono_large / 1e6:8.1f} MB",
                f"streamed   @ {SMALL_SLOTS} slots: "
                f"{streamed_small / 1e6:8.1f} MB",
                f"streamed   @ {LARGE_SLOTS} slots: "
                f"{streamed_large / 1e6:8.1f} MB  "
                f"(x{growth:.2f} for a 4x run, "
                f"{fraction:.0%} of monolithic)",
            ]
        ),
    )
    write_bench_artifact(
        "memory",
        {
            "single": {
                "monolithic_large_bytes": mono_large,
                "streamed_small_bytes": streamed_small,
                "streamed_large_bytes": streamed_large,
                "growth": growth,
                "fraction_of_monolithic": fraction,
            }
        },
    )
    assert streamed_large <= mono_large * MEM_FRACTION, (
        f"streamed peak {streamed_large / 1e6:.1f} MB is not below "
        f"{MEM_FRACTION:.0%} of the monolithic "
        f"{mono_large / 1e6:.1f} MB"
    )
    assert growth <= MEM_GROWTH, (
        f"streamed peak grew {growth:.2f}x for a 4x longer run "
        f"(bound {MEM_GROWTH}x) — the window is no longer what "
        f"dominates"
    )


def _run_fabric(slots: int, window_slots=None) -> None:
    from repro.sim.composite import run_fabric

    run_fabric(
        "leaf-spine",
        uniform_matrix(bench_n(), LOAD),
        slots,
        seed=0,
        load_label=LOAD,
        keep_samples=False,
        window_slots=window_slots,
    )


def test_fabric_streamed_memory_bounded():
    """The chained fabric replay is O(window + in-flight) too.

    Every stage advances window by window and the link couplers only
    retain the identities of packets still inside the fabric, so the
    same two bounds hold for a two-stage chain: streamed peak well below
    the monolithic chain's, and near-flat growth with run length.
    """
    mono_large = _peak_bytes(lambda: _run_fabric(LARGE_SLOTS))
    streamed_small = _peak_bytes(
        lambda: _run_fabric(SMALL_SLOTS, window_slots=WINDOW_SLOTS)
    )
    streamed_large = _peak_bytes(
        lambda: _run_fabric(LARGE_SLOTS, window_slots=WINDOW_SLOTS)
    )
    growth = streamed_large / max(streamed_small, 1)
    fraction = streamed_large / max(mono_large, 1)
    emit(
        f"Peak fabric memory (leaf-spine, N={bench_n()}, load {LOAD}, "
        f"window {WINDOW_SLOTS})",
        "\n".join(
            [
                f"monolithic @ {LARGE_SLOTS} slots: "
                f"{mono_large / 1e6:8.1f} MB",
                f"streamed   @ {SMALL_SLOTS} slots: "
                f"{streamed_small / 1e6:8.1f} MB",
                f"streamed   @ {LARGE_SLOTS} slots: "
                f"{streamed_large / 1e6:8.1f} MB  "
                f"(x{growth:.2f} for a 4x run, "
                f"{fraction:.0%} of monolithic)",
            ]
        ),
    )
    write_bench_artifact(
        "memory",
        {
            "fabric": {
                "monolithic_large_bytes": mono_large,
                "streamed_small_bytes": streamed_small,
                "streamed_large_bytes": streamed_large,
                "growth": growth,
                "fraction_of_monolithic": fraction,
            }
        },
    )
    assert streamed_large <= mono_large * MEM_FRACTION, (
        f"streamed fabric peak {streamed_large / 1e6:.1f} MB is not "
        f"below {MEM_FRACTION:.0%} of the monolithic "
        f"{mono_large / 1e6:.1f} MB"
    )
    assert growth <= MEM_GROWTH, (
        f"streamed fabric peak grew {growth:.2f}x for a 4x longer run "
        f"(bound {MEM_GROWTH}x) — the window is no longer what "
        f"dominates"
    )
