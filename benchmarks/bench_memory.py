"""Benchmark: windowed (streaming) replay keeps peak memory bounded.

The monolithic vectorized engine materializes a whole run's arrivals (and
every per-stage intermediate array) at once, so its peak memory grows
linearly with ``--slots``; the windowed replay
(``run_single_fast(..., window_slots=W)``) materializes O(W) slots at a
time and folds metrics as it goes, so its peak stays (nearly) flat as
runs grow — that is the property that unlocks multi-million-slot runs.

This module pins both claims with ``tracemalloc`` (which tracks NumPy's
buffers and is measurable per-section, unlike ``ru_maxrss``, which never
decreases within a process):

* the streamed peak at the large size must be well below the monolithic
  peak at the same size (``REPRO_BENCH_MEM_FRACTION``, default 0.5);
* growing the run 4x must grow the streamed peak by far less than 4x
  (``REPRO_BENCH_MEM_GROWTH``, default 2.0 — carried queue state and
  drain tails add a sublinear remainder over the flat window buffers).

Unlike the wall-clock bars in ``bench_engines.py``, these are
*deterministic allocation* measurements, so they also run inside CI
sandboxes.  Scale knobs: ``REPRO_BENCH_N`` and
``REPRO_BENCH_MEM_SLOTS`` (the large size; the small size is a quarter
of it).
"""

from __future__ import annotations

import gc
import os
import tracemalloc

from repro.sim.fast_engine import run_single_fast
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_n, emit, write_bench_artifact

LOAD = 0.9
WINDOW_SLOTS = 4096
LARGE_SLOTS = int(os.environ.get("REPRO_BENCH_MEM_SLOTS", "120000"))
SMALL_SLOTS = LARGE_SLOTS // 4
MEM_FRACTION = float(os.environ.get("REPRO_BENCH_MEM_FRACTION", "0.5"))
MEM_GROWTH = float(os.environ.get("REPRO_BENCH_MEM_GROWTH", "2.0"))


def _peak_bytes(fn) -> int:
    """Peak traced allocation of one call, in bytes."""
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _run(slots: int, window_slots=None) -> None:
    # keep_samples=False: retained per-packet samples are inherently
    # O(run) and identical for both paths; the claim under test is about
    # the *engine's* working set.
    run_single_fast(
        "sprinklers",
        uniform_matrix(bench_n(), LOAD),
        slots,
        seed=0,
        load_label=LOAD,
        keep_samples=False,
        window_slots=window_slots,
    )


def test_streamed_memory_bounded():
    mono_large = _peak_bytes(lambda: _run(LARGE_SLOTS))
    streamed_small = _peak_bytes(
        lambda: _run(SMALL_SLOTS, window_slots=WINDOW_SLOTS)
    )
    streamed_large = _peak_bytes(
        lambda: _run(LARGE_SLOTS, window_slots=WINDOW_SLOTS)
    )
    growth = streamed_large / max(streamed_small, 1)
    fraction = streamed_large / max(mono_large, 1)
    emit(
        f"Peak engine memory (sprinklers, N={bench_n()}, load {LOAD}, "
        f"window {WINDOW_SLOTS})",
        "\n".join(
            [
                f"monolithic @ {LARGE_SLOTS} slots: "
                f"{mono_large / 1e6:8.1f} MB",
                f"streamed   @ {SMALL_SLOTS} slots: "
                f"{streamed_small / 1e6:8.1f} MB",
                f"streamed   @ {LARGE_SLOTS} slots: "
                f"{streamed_large / 1e6:8.1f} MB  "
                f"(x{growth:.2f} for a 4x run, "
                f"{fraction:.0%} of monolithic)",
            ]
        ),
    )
    write_bench_artifact(
        "memory",
        {
            "single": {
                "monolithic_large_bytes": mono_large,
                "streamed_small_bytes": streamed_small,
                "streamed_large_bytes": streamed_large,
                "growth": growth,
                "fraction_of_monolithic": fraction,
            }
        },
    )
    assert streamed_large <= mono_large * MEM_FRACTION, (
        f"streamed peak {streamed_large / 1e6:.1f} MB is not below "
        f"{MEM_FRACTION:.0%} of the monolithic "
        f"{mono_large / 1e6:.1f} MB"
    )
    assert growth <= MEM_GROWTH, (
        f"streamed peak grew {growth:.2f}x for a 4x longer run "
        f"(bound {MEM_GROWTH}x) — the window is no longer what "
        f"dominates"
    )


def test_fused_metrics_no_retained_samples():
    """Fused metrics: exact percentiles with zero per-packet arrays.

    ``keep_samples=False`` runs fold every window's delays into an exact
    sparse histogram, so the streamed replay reports exact p50/p99
    without ever holding a per-packet delay array.  Pinned two ways: the
    retained-samples twin of the same run must agree exactly on the
    percentiles, and its peak must exceed the fused run's by at least
    most of one per-packet array — i.e. the fused path measurably does
    not hold one.
    """
    results = {}

    def run(keep_samples: bool) -> None:
        results[keep_samples] = run_single_fast(
            "sprinklers",
            uniform_matrix(bench_n(), LOAD),
            LARGE_SLOTS,
            seed=0,
            load_label=LOAD,
            keep_samples=keep_samples,
            window_slots=WINDOW_SLOTS,
        )

    fused_peak = _peak_bytes(lambda: run(False))
    retained_peak = _peak_bytes(lambda: run(True))
    fused, retained = results[False], results[True]
    measured = fused.measured_packets
    assert measured > 0
    assert fused._delay_samples == []
    assert fused.p50_delay == retained.p50_delay
    assert fused.p99_delay == retained.p99_delay
    assert sum(fused._delay_histogram.values()) == measured
    margin = retained_peak - fused_peak
    emit(
        f"Fused-metrics memory (sprinklers, N={bench_n()}, load {LOAD}, "
        f"{LARGE_SLOTS} slots, window {WINDOW_SLOTS})",
        "\n".join(
            [
                f"fused (no samples):  {fused_peak / 1e6:8.1f} MB  "
                f"(exact p50 {fused.p50_delay}, p99 {fused.p99_delay})",
                f"retained samples:    {retained_peak / 1e6:8.1f} MB  "
                f"(+{margin / 1e6:.1f} MB for {measured} packets)",
            ]
        ),
    )
    write_bench_artifact(
        "memory",
        {
            "fused_metrics": {
                "measured_packets": measured,
                "fused_peak_bytes": fused_peak,
                "retained_peak_bytes": retained_peak,
                "p50": fused.p50_delay,
                "p99": fused.p99_delay,
            }
        },
    )
    # A retained per-packet delay array costs >= 8 bytes/packet (int64);
    # the fused run must sit at least most of that below the retained
    # twin, or it is secretly holding per-packet state.
    assert margin >= 6 * measured, (
        f"fused-metrics peak is only {margin / 1e6:.1f} MB below the "
        f"retained run for {measured} packets — the fused path appears "
        f"to hold a per-packet array"
    )


def _run_fabric(slots: int, window_slots=None) -> None:
    from repro.sim.composite import run_fabric

    run_fabric(
        "leaf-spine",
        uniform_matrix(bench_n(), LOAD),
        slots,
        seed=0,
        load_label=LOAD,
        keep_samples=False,
        window_slots=window_slots,
    )


def test_fabric_streamed_memory_bounded():
    """The chained fabric replay is O(window + in-flight) too.

    Every stage advances window by window and the link couplers only
    retain the identities of packets still inside the fabric, so the
    same two bounds hold for a two-stage chain: streamed peak well below
    the monolithic chain's, and near-flat growth with run length.
    """
    mono_large = _peak_bytes(lambda: _run_fabric(LARGE_SLOTS))
    streamed_small = _peak_bytes(
        lambda: _run_fabric(SMALL_SLOTS, window_slots=WINDOW_SLOTS)
    )
    streamed_large = _peak_bytes(
        lambda: _run_fabric(LARGE_SLOTS, window_slots=WINDOW_SLOTS)
    )
    growth = streamed_large / max(streamed_small, 1)
    fraction = streamed_large / max(mono_large, 1)
    emit(
        f"Peak fabric memory (leaf-spine, N={bench_n()}, load {LOAD}, "
        f"window {WINDOW_SLOTS})",
        "\n".join(
            [
                f"monolithic @ {LARGE_SLOTS} slots: "
                f"{mono_large / 1e6:8.1f} MB",
                f"streamed   @ {SMALL_SLOTS} slots: "
                f"{streamed_small / 1e6:8.1f} MB",
                f"streamed   @ {LARGE_SLOTS} slots: "
                f"{streamed_large / 1e6:8.1f} MB  "
                f"(x{growth:.2f} for a 4x run, "
                f"{fraction:.0%} of monolithic)",
            ]
        ),
    )
    write_bench_artifact(
        "memory",
        {
            "fabric": {
                "monolithic_large_bytes": mono_large,
                "streamed_small_bytes": streamed_small,
                "streamed_large_bytes": streamed_large,
                "growth": growth,
                "fraction_of_monolithic": fraction,
            }
        },
    )
    assert streamed_large <= mono_large * MEM_FRACTION, (
        f"streamed fabric peak {streamed_large / 1e6:.1f} MB is not "
        f"below {MEM_FRACTION:.0%} of the monolithic "
        f"{mono_large / 1e6:.1f} MB"
    )
    assert growth <= MEM_GROWTH, (
        f"streamed fabric peak grew {growth:.2f}x for a 4x longer run "
        f"(bound {MEM_GROWTH}x) — the window is no longer what "
        f"dominates"
    )
