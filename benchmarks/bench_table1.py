"""Benchmark E1: regenerate the paper's Table 1 (overload bounds).

Times the full Chernoff optimization grid and checks the recomputed values
against the paper's published cells (where the paper's numbers are not at
its ~1e-29 numeric floor; see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.chernoff import PAPER_TABLE1, overload_probability_bound
from repro.figures import table1

from benchmarks.conftest import bench_mean_s, emit, write_bench_artifact


def test_table1_regeneration(benchmark):
    rows = benchmark(table1.generate)
    assert len(rows) == 8
    emit("Table 1 (recomputed)", table1.render(include_paper=True))
    write_bench_artifact(
        "table1", {"generate_mean_s": bench_mean_s(benchmark), "rows": len(rows)}
    )
    # Fidelity: match the paper everywhere its values are clearly above
    # its numeric floor.
    for (rho, n), paper_value in PAPER_TABLE1.items():
        if paper_value < 1e-25:
            continue
        row = next(r for r in rows if r["rho"] == rho)
        assert row[f"N={n}"] == pytest.approx(paper_value, rel=0.1)


def test_single_bound_latency(benchmark):
    """One (rho, N) cell: the unit of work a control plane would run."""
    value = benchmark(overload_probability_bound, 0.93, 2048)
    assert value == pytest.approx(3.09e-18, rel=0.1)
    write_bench_artifact(
        "table1", {"single_bound_mean_s": bench_mean_s(benchmark)}
    )
