"""Benchmark E2: regenerate the paper's Figure 5 (delay vs N at rho=0.9).

Times the closed-form series and the exact truncated stationary solve, and
checks the linear-in-N shape the paper reports (~4e3 periods at N=1000).
"""

import pytest

from repro.analysis.delay_model import (
    expected_queue_length,
    expected_queue_length_numeric,
)
from repro.figures import fig5

from benchmarks.conftest import bench_mean_s, emit, write_bench_artifact


def test_fig5_series(benchmark):
    rows = benchmark(fig5.generate)
    emit("Figure 5 (recomputed)", fig5.render())
    write_bench_artifact(
        "fig5", {"series_mean_s": bench_mean_s(benchmark), "rows": len(rows)}
    )
    delays = {row["N"]: row["delay_periods"] for row in rows}
    # Paper's anchor: ~4e3 periods at N=1000 (closed form 4495.5).
    assert delays[1000] == pytest.approx(4495.5)
    # Linearity: successive ratios track (N2-1)/(N1-1).
    assert delays[800] / delays[400] == pytest.approx(799 / 399)


def test_fig5_exact_stationary_solve(benchmark):
    """The sparse linear-algebra path at a mid-size N."""
    numeric = benchmark(expected_queue_length_numeric, 64, 0.9)
    assert numeric == pytest.approx(expected_queue_length(64, 0.9), rel=0.02)
    write_bench_artifact(
        "fig5", {"stationary_solve_mean_s": bench_mean_s(benchmark)}
    )
