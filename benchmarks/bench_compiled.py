"""Benchmark: compiled kernel backend vs the NumPy reference.

The compiled backend (``repro.sim.kernels.compiled``) replaces the three
hot scalar-recursion passes of the vectorized replay — frame formation,
polled-queue service, the per-VOQ reordering fold — with numba ``@njit``
loops.  This module pins the two claims that make it shippable:

* **bit parity, always**: every row asserts ``to_dict()`` equality
  between the NumPy and compiled runs (extras included), on every
  machine — with or without numba, since without it the compiled passes
  run as the same arithmetic in pure Python;
* **the speedup bar, where it means something**: with numba installed
  and ``REPRO_BENCH_MIN_SPEEDUP_COMPILED`` set (the compiled-smoke CI
  job sets both), the frame switches PF and FOFF must beat the NumPy
  lane engine by that factor at full scale (>= 100k slots).  The bar is
  opt-in by env var — unlike the engine shoot-out bars it is *not*
  skipped under ``CI``, because the job that sets it exists to enforce
  it.

Without numba the pure-Python fallback is orders of magnitude slower
than NumPy, so timing runs shrink to a parity-sized workload and no
ratio is asserted.  Artifact: ``BENCH_compiled.json``.
"""

from __future__ import annotations

import os
import time

from repro.sim.experiment import run_single
from repro.sim.kernels.compiled import compiled_available
from repro.traffic.matrices import uniform_matrix

from benchmarks.conftest import bench_n, bench_slots, emit, write_bench_artifact

#: The switches the compiled backend accelerates hardest: the frame
#: switches run the per-cycle formation stepper (the bar applies to
#: these) and sprinklers exercises the polled-service + fold passes.
FRAME_SWITCHES = ("pf", "foff")
SWITCHES = FRAME_SWITCHES + ("sprinklers",)
LOAD = 0.9
FULL_SCALE_SLOTS = 100_000
#: Unset by default: the bar asserts only where numba actually compiles
#: (the compiled-smoke CI job sets it to 5.0).
MIN_SPEEDUP = os.environ.get("REPRO_BENCH_MIN_SPEEDUP_COMPILED")
#: Without numba the "compiled" passes are pure Python — parity still
#: holds, but timing them at bench scale would take minutes, so the
#: workload shrinks to a parity-sized run.
FALLBACK_SLOTS_CAP = 2_000


def _time_backend(switch, matrix, slots, backend, repeats=2):
    """Min-of-N wall clock for one (switch, backend) cell.

    Minimum-of-N is the steady-state estimator the other bench modules
    use; for the compiled backend the first call additionally absorbs
    numba's JIT compilation, which min-of-N discards by design.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_single(
            switch,
            matrix,
            slots,
            seed=0,
            load_label=LOAD,
            keep_samples=False,
            engine="vectorized",
            backend=backend,
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def test_compiled_backend_speedup():
    n = bench_n()
    slots = bench_slots()
    have_numba = compiled_available()
    if not have_numba:
        slots = min(slots, FALLBACK_SLOTS_CAP)
    matrix = uniform_matrix(n, LOAD)
    rows = []
    for switch in SWITCHES:
        ref, t_ref = _time_backend(switch, matrix, slots, "numpy")
        com, t_com = _time_backend(switch, matrix, slots, "compiled")
        # Bit parity is the contract, everywhere: the compiled loops are
        # the same decisions and the same arithmetic as the NumPy
        # passes, so the *entire* result payload must agree.
        assert com.to_dict() == ref.to_dict(), switch
        rows.append(
            {
                "switch": switch,
                "numpy_s": t_ref,
                "compiled_s": t_com,
                "speedup": t_ref / t_com,
            }
        )
    lines = [
        f"{'switch':12s} {'numpy':>9s} {'compiled':>9s} {'speedup':>8s}"
    ]
    for row in rows:
        lines.append(
            f"{row['switch']:12s} {row['numpy_s']:8.3f}s "
            f"{row['compiled_s']:8.3f}s {row['speedup']:7.1f}x"
        )
    emit(
        f"Compiled-backend shoot-out (N={n}, load {LOAD}, {slots} slots, "
        f"numba={'yes' if have_numba else 'no — pure-Python fallback'})",
        "\n".join(lines),
    )
    write_bench_artifact(
        "compiled",
        {
            "numba_available": have_numba,
            "slots": slots,
            "shootout": [
                {k: row[k] for k in ("switch", "numpy_s", "compiled_s", "speedup")}
                for row in rows
            ],
        },
    )
    if not have_numba:
        return  # parity asserted above; no meaningful ratio to enforce
    if MIN_SPEEDUP is None or slots < FULL_SCALE_SLOTS:
        return  # reporting run; the bar needs full scale and the env knob
    floor = float(MIN_SPEEDUP)
    for row in rows:
        if row["switch"] not in FRAME_SWITCHES:
            continue
        assert row["speedup"] >= floor, (
            f"{row['switch']}: compiled {row['speedup']:.1f}x < {floor}x "
            f"over the NumPy lane engine at {slots} slots"
        )
