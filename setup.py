"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` / ``python setup.py develop`` work on offline
environments whose setuptools predates native PEP 660 editable installs
(they need the legacy code path, which requires a ``setup.py``).
"""

from setuptools import setup

setup()
